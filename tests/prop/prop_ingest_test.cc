// Ingestion property suite: on generated worlds (catalog + user universe)
// and generated sessions, the corpus build must be invariant to thread
// count, counting path (flat fast path vs open-addressing fallback), and
// chunked-streaming vs materialized input — byte-identical artifacts, not
// just equal summaries. Plus the SessionStream error-tolerance contract on
// generated malformed-line scripts, checked against a line-by-line model.

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "datagen/dataset.h"
#include "datagen/session_stream.h"
#include "gtest/gtest.h"
#include "prop.h"

namespace sisg::prop {
namespace {

std::string FreshPath(const std::string& name) {
  const std::string path =
      ::testing::TempDir() + "/" + name + "." + std::to_string(getpid());
  std::remove(path.c_str());
  return path;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// A generated small world. Heap-held and shared so shrink candidates can
/// copy the case cheaply.
struct World {
  ItemCatalog catalog;
  UserUniverse users;
  TokenSpace token_space;
};

std::shared_ptr<const World> MakeWorld(Rng& rng) {
  auto w = std::make_shared<World>();
  CatalogConfig cat;
  cat.num_items = static_cast<uint32_t>(rng.UniformInt(20, 120));
  cat.num_leaf_categories = static_cast<uint32_t>(rng.UniformInt(2, 6));
  cat.leaves_per_top = static_cast<uint32_t>(rng.UniformInt(1, 3));
  cat.num_shops = static_cast<uint32_t>(rng.UniformInt(6, 20));
  cat.num_brands = static_cast<uint32_t>(rng.UniformInt(8, 20));
  cat.num_cities = static_cast<uint32_t>(rng.UniformInt(2, 8));
  cat.num_styles = static_cast<uint32_t>(rng.UniformInt(2, 6));
  cat.num_materials = static_cast<uint32_t>(rng.UniformInt(2, 6));
  cat.brands_per_leaf = static_cast<uint32_t>(rng.UniformInt(2, 4));
  cat.shops_per_leaf = static_cast<uint32_t>(rng.UniformInt(2, 5));
  cat.seed = rng.Next();
  if (!w->catalog.Build(cat).ok()) return nullptr;
  UserUniverseConfig uc;
  uc.num_user_types = static_cast<uint32_t>(rng.UniformInt(3, 30));
  uc.num_preferred_tops = 1;
  uc.seed = rng.Next();
  if (!w->users.Build(uc, w->catalog.num_tops()).ok()) return nullptr;
  w->token_space = TokenSpace::Create(&w->catalog, &w->users);
  return w;
}

struct IngestCase {
  std::shared_ptr<const World> world;
  std::vector<Session> sessions;
  CorpusOptions options;  // enrich + min_count; threads/path set per build
};

Gen<IngestCase> IngestGen(bool allow_empty_sessions) {
  return Gen<IngestCase>([allow_empty_sessions](Rng& rng) {
    IngestCase c;
    c.world = MakeWorld(rng);
    if (!c.world) return c;  // property reports the build failure
    const uint32_t num_sessions =
        static_cast<uint32_t>(rng.UniformInt(30, 150));
    for (uint32_t i = 0; i < num_sessions; ++i) {
      Session s;
      s.user_type =
          static_cast<uint32_t>(rng.UniformU64(c.world->users.num_types()));
      // 0-length sessions (enricher edge case) only where the text format is
      // not involved, since "ut\t" does not round-trip.
      const int min_len = allow_empty_sessions ? 0 : 1;
      const int len = static_cast<int>(rng.UniformInt(min_len, 10));
      for (int j = 0; j < len; ++j) {
        s.items.push_back(static_cast<uint32_t>(
            rng.UniformU64(c.world->catalog.num_items())));
      }
      c.sessions.push_back(std::move(s));
    }
    c.options.enrich.include_item_si = rng.Bernoulli(0.5);
    c.options.enrich.include_user_type = rng.Bernoulli(0.5);
    c.options.min_count = static_cast<uint32_t>(rng.UniformInt(1, 3));
    return c;
  });
}

std::string ShowIngest(const IngestCase& c) {
  std::ostringstream os;
  if (!c.world) return "{world build failed}";
  os << "{items=" << c.world->catalog.num_items()
     << ", user_types=" << c.world->users.num_types()
     << ", sessions=" << c.sessions.size()
     << ", si=" << c.options.enrich.include_item_si
     << ", ut=" << c.options.enrich.include_user_type
     << ", min_count=" << c.options.min_count << "}";
  return os.str();
}

/// Shrink by dropping sessions (the world and options stay fixed); the
/// shared world makes candidate copies cheap.
Shrinker<IngestCase> ShrinkIngest() {
  return [](const IngestCase& c) {
    std::vector<IngestCase> out;
    const auto vec_shrink = ShrinkVector<Session>(NoShrink<Session>(), 1);
    for (auto& smaller : vec_shrink(c.sessions)) {
      IngestCase cand = c;
      cand.sessions = std::move(smaller);
      out.push_back(std::move(cand));
    }
    return out;
  };
}

std::string CompareCorpora(const Corpus& ref, const Corpus& got,
                           const std::string& what) {
  if (!(got.packed() == ref.packed())) {
    return what + ": packed corpus differs from the serial flat-path build";
  }
  if (got.vocab().size() != ref.vocab().size()) {
    return what + ": vocab size " + std::to_string(got.vocab().size()) +
           " != " + std::to_string(ref.vocab().size());
  }
  for (uint32_t v = 0; v < ref.vocab().size(); ++v) {
    if (got.vocab().ToToken(v) != ref.vocab().ToToken(v) ||
        got.vocab().Frequency(v) != ref.vocab().Frequency(v)) {
      return what + ": vocab entry " + std::to_string(v) + " differs";
    }
  }
  return "";
}

TEST(PropIngest, BuildInvariantToThreadsCountingPathAndStreaming) {
  const Result r = ForAllSeeded<IngestCase>(
      "build_invariance", 100, IngestGen(/*allow_empty_sessions=*/true),
      [](const IngestCase& c) -> std::string {
        if (!c.world) return "generated catalog/universe failed to build";
        Corpus ref;
        const Status ref_st = ref.Build(c.sessions, c.world->token_space,
                                        c.world->catalog, c.options);

        struct Variant {
          const char* name;
          uint32_t threads;
          uint32_t flat_threshold;
        };
        const Variant variants[] = {
            {"threads=2 flat", 2, 1u << 22},
            {"threads=4 flat", 4, 1u << 22},
            {"threads=1 map", 1, 0},
            {"threads=3 map", 3, 0},
        };
        for (const Variant& v : variants) {
          CorpusOptions opts = c.options;
          opts.num_threads = v.threads;
          opts.flat_count_threshold = v.flat_threshold;
          Corpus got;
          const Status st = got.Build(c.sessions, c.world->token_space,
                                      c.world->catalog, opts);
          // Failure (e.g. every sequence dropped) must be path-independent.
          if (st.code() != ref_st.code()) {
            return std::string(v.name) + ": status " + st.ToString() +
                   " != reference " + ref_st.ToString();
          }
          if (!ref_st.ok()) continue;
          const std::string diff = CompareCorpora(ref, got, v.name);
          if (!diff.empty()) return diff;
        }
        if (!ref_st.ok()) return "";

        // Streamed build with a chunk size that straddles session counts.
        VectorSessionSource source(&c.sessions, 7);
        CorpusOptions sopts = c.options;
        sopts.num_threads = 4;
        Corpus streamed;
        const Status st = streamed.BuildFromSource(
            &source, c.world->token_space, c.world->catalog, sopts);
        if (!st.ok()) return "streamed build failed: " + st.ToString();
        const std::string sdiff = CompareCorpora(ref, streamed, "streamed");
        if (!sdiff.empty()) return sdiff;

        // Full byte-identity of the published artifacts, not just equality
        // of the in-memory views.
        const std::string p_ref = FreshPath("prop_ingest_ref");
        const std::string p_par = FreshPath("prop_ingest_par");
        Corpus parallel;
        CorpusOptions popts = c.options;
        popts.num_threads = 4;
        if (!parallel
                 .Build(c.sessions, c.world->token_space, c.world->catalog,
                        popts)
                 .ok()) {
          return "parallel rebuild failed";
        }
        if (!ref.Save(p_ref).ok() || !parallel.Save(p_par).ok()) {
          return "corpus save failed";
        }
        std::string verdict;
        for (const char* ext : {".vocab", ".corpus"}) {
          if (ReadFileBytes(p_ref + ext) != ReadFileBytes(p_par + ext)) {
            verdict = std::string("artifact ") + ext +
                      " bytes differ between thread counts";
            break;
          }
        }
        for (const char* ext : {".vocab", ".corpus"}) {
          std::remove((p_ref + ext).c_str());
          std::remove((p_par + ext).c_str());
        }
        return verdict;
      },
      ShrinkIngest(), ShowIngest);
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(PropIngest, FileStreamMatchesInMemorySessionsAcrossChunkSizes) {
  const Result r = ForAllSeeded<IngestCase>(
      "stream_vs_vector", 100, IngestGen(/*allow_empty_sessions=*/false),
      [](const IngestCase& c) -> std::string {
        if (!c.world) return "generated catalog/universe failed to build";
        const std::string path = FreshPath("prop_ingest_stream.txt");
        if (!WriteSessionsText(c.sessions, c.world->users, path).ok()) {
          return "WriteSessionsText failed";
        }
        std::string verdict;
        for (const size_t chunk : {size_t{1}, size_t{7}, size_t{64}}) {
          SessionStreamOptions opts;
          opts.chunk_sessions = chunk;
          auto stream = SessionStream::Open(c.world->users, path, opts);
          if (!stream.ok()) {
            verdict = "stream open failed: " + stream.status().ToString();
            break;
          }
          std::vector<Session> all, chunk_buf;
          for (;;) {
            const Status st = stream->NextChunk(&chunk_buf);
            if (!st.ok()) {
              verdict = "NextChunk failed: " + st.ToString();
              break;
            }
            if (chunk_buf.empty()) break;
            if (chunk_buf.size() > chunk) {
              verdict = "chunk larger than requested";
              break;
            }
            all.insert(all.end(), chunk_buf.begin(), chunk_buf.end());
          }
          if (!verdict.empty()) break;
          if (all.size() != c.sessions.size()) {
            verdict = "session count " + std::to_string(all.size()) + " != " +
                      std::to_string(c.sessions.size()) + " at chunk " +
                      std::to_string(chunk);
            break;
          }
          for (size_t i = 0; i < all.size(); ++i) {
            if (all[i].user_type != c.sessions[i].user_type ||
                all[i].items != c.sessions[i].items) {
              verdict = "session " + std::to_string(i) + " differs at chunk " +
                        std::to_string(chunk);
              break;
            }
          }
          if (!verdict.empty()) break;
          if (stream->stats().lines_skipped != 0) {
            verdict = "clean file reported skipped lines";
            break;
          }
        }
        std::remove(path.c_str());
        return verdict;
      },
      ShrinkIngest(), ShowIngest);
  EXPECT_TRUE(r.ok) << r.message;
}

// ------------- max_errors tolerance on generated malformed scripts -------------

enum class LineKind : int { kGood = 0, kBad = 1, kEmpty = 2 };

struct ErrorScript {
  std::vector<LineKind> lines;
  uint64_t max_errors = 0;
  size_t chunk_sessions = 4;
};

/// Renders a script to concrete file lines. Bad lines rotate through every
/// malformed shape ParseLine can reject; the bad item token is "x9"
/// (unambiguous: strtoul accepts "+5"-style strings).
std::vector<std::string> RenderScript(const ErrorScript& s,
                                      const UserUniverse& users) {
  std::vector<std::string> out;
  const std::string ut = users.TypeToken(0);
  int bad = 0, good = 0;
  for (const LineKind k : s.lines) {
    switch (k) {
      case LineKind::kGood:
        out.push_back(ut + "\t" + std::to_string(1 + good % 5) + " " +
                      std::to_string(2 + good % 7));
        ++good;
        break;
      case LineKind::kBad:
        switch (bad++ % 4) {
          case 0: out.push_back("no-tab-here"); break;
          case 1: out.push_back(ut + "\tx9 3"); break;
          case 2: out.push_back("zzz_not_a_usertype\t1 2"); break;
          default: out.push_back(ut + "\t"); break;  // empty session
        }
        break;
      case LineKind::kEmpty:
        out.push_back("");
        break;
    }
  }
  return out;
}

std::string ShowScript(const ErrorScript& s) {
  std::ostringstream os;
  os << "{max_errors=" << s.max_errors << ", chunk=" << s.chunk_sessions
     << ", lines=";
  for (const LineKind k : s.lines) os << "GBE"[static_cast<int>(k)];
  os << "}";
  return os.str();
}

Gen<ErrorScript> ScriptGen() {
  return Gen<ErrorScript>([](Rng& rng) {
    ErrorScript s;
    const int n = static_cast<int>(rng.UniformInt(1, 24));
    for (int i = 0; i < n; ++i) {
      const uint64_t pick = rng.UniformU64(9);
      s.lines.push_back(pick < 5   ? LineKind::kGood
                        : pick < 8 ? LineKind::kBad
                                   : LineKind::kEmpty);
    }
    s.chunk_sessions = static_cast<size_t>(rng.UniformInt(1, 6));
    // Force the named edge shapes often enough to matter.
    switch (rng.UniformU64(4)) {
      case 0:  // all lines bad
        for (auto& k : s.lines) k = LineKind::kBad;
        break;
      case 1:  // bad on the final line
        s.lines.back() = LineKind::kBad;
        break;
      case 2: {  // bad exactly where a chunk fills: after chunk_sessions goods
        size_t goods = 0;
        for (auto& k : s.lines) {
          if (k == LineKind::kBad) k = LineKind::kGood;
          if (k == LineKind::kGood && ++goods == s.chunk_sessions) {
            k = LineKind::kBad;
            break;
          }
        }
        break;
      }
      default:
        break;
    }
    uint64_t bad_count = 0;
    for (const LineKind k : s.lines) bad_count += (k == LineKind::kBad);
    s.max_errors = rng.UniformU64(bad_count + 3);
    return s;
  });
}

/// Shrink a script by dropping lines (keeping max_errors/chunk fixed).
Shrinker<ErrorScript> ShrinkScript() {
  return [](const ErrorScript& s) {
    std::vector<ErrorScript> out;
    const auto vec_shrink = ShrinkVector<LineKind>(NoShrink<LineKind>(), 1);
    for (auto& smaller : vec_shrink(s.lines)) {
      ErrorScript cand = s;
      cand.lines = std::move(smaller);
      out.push_back(std::move(cand));
    }
    return out;
  };
}

TEST(PropIngest, MaxErrorsToleranceMatchesLineModel) {
  // One tiny world for every case: the script is the generated input.
  Rng setup(0x5052u);
  const auto world = MakeWorld(setup);
  ASSERT_NE(world, nullptr);

  const Result r = ForAllSeeded<ErrorScript>(
      "max_errors_model", 150, ScriptGen(),
      [&world](const ErrorScript& s) -> std::string {
        // Model: replay ParseLine semantics line by line. A bad line is
        // skipped while the budget lasts; the (max_errors+1)-th fails with
        // its 1-based line number. Blank lines are silently ignored.
        uint64_t model_skipped = 0;
        size_t model_sessions = 0;
        bool model_fails = false;
        size_t fail_line = 0;
        for (size_t i = 0; i < s.lines.size() && !model_fails; ++i) {
          switch (s.lines[i]) {
            case LineKind::kEmpty:
              break;
            case LineKind::kGood:
              ++model_sessions;
              break;
            case LineKind::kBad:
              if (model_skipped < s.max_errors) {
                ++model_skipped;
              } else {
                model_fails = true;
                fail_line = i + 1;
              }
              break;
          }
        }

        const auto lines = RenderScript(s, world->users);
        const std::string path = FreshPath("prop_ingest_err.txt");
        {
          std::ofstream out(path);
          for (const auto& l : lines) out << l << "\n";
        }
        SessionStreamOptions opts;
        opts.chunk_sessions = s.chunk_sessions;
        opts.max_errors = s.max_errors;
        auto stream = SessionStream::Open(world->users, path, opts);
        if (!stream.ok()) {
          std::remove(path.c_str());
          return "open failed: " + stream.status().ToString();
        }
        std::string verdict;
        std::vector<Session> chunk;
        size_t got_sessions = 0;
        for (;;) {
          const Status st = stream->NextChunk(&chunk);
          if (!st.ok()) {
            if (!model_fails) {
              verdict = "unexpected failure: " + st.ToString();
            } else if (st.code() != StatusCode::kCorruption) {
              verdict = "failure is not Corruption: " + st.ToString();
            } else if (st.message().find("line " + std::to_string(fail_line)) ==
                       std::string::npos) {
              verdict = "error does not name line " +
                        std::to_string(fail_line) + ": " + st.ToString();
            }
            break;
          }
          if (chunk.empty()) {
            if (model_fails) {
              verdict = "model expected a failure, stream ended clean";
            }
            break;
          }
          got_sessions += chunk.size();
        }
        if (verdict.empty() && !model_fails) {
          if (got_sessions != model_sessions) {
            verdict = "sessions " + std::to_string(got_sessions) +
                      " != model " + std::to_string(model_sessions);
          } else if (stream->stats().lines_skipped != model_skipped) {
            verdict = "skipped " +
                      std::to_string(stream->stats().lines_skipped) +
                      " != model " + std::to_string(model_skipped);
          } else if (stream->stats().lines_read != lines.size()) {
            verdict = "lines_read " +
                      std::to_string(stream->stats().lines_read) + " != " +
                      std::to_string(lines.size());
          } else if (model_skipped > 0 && stream->stats().first_error.empty()) {
            verdict = "skips happened but first_error is empty";
          }
        }
        std::remove(path.c_str());
        return verdict;
      },
      ShrinkScript(), ShowScript);
  EXPECT_TRUE(r.ok) << r.message;
}

}  // namespace
}  // namespace sisg::prop
