// Serving property suite: generated wire-frame byte streams — valid frames
// of every type, interleaved garbage, oversized headers, truncation — fed to
// FrameReader in generated chunkings never crash it, recover exactly the
// frames before the first poison, and behave identically regardless of how
// the bytes were split. Plus the coalescing contract: batched answers are
// bit-identical to per-item offline queries on generated engines.

#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/matching_engine.h"
#include "gtest/gtest.h"
#include "prop.h"
#include "serve/wire.h"

namespace sisg::prop {
namespace {

using serve::DecodeHealthResp;
using serve::DecodeQuery;
using serve::DecodeResponse;
using serve::EncodeHealth;
using serve::EncodeHealthResp;
using serve::EncodePing;
using serve::EncodePong;
using serve::EncodeQuery;
using serve::EncodeResponse;
using serve::Frame;
using serve::FrameReader;
using serve::HealthInfo;
using serve::MsgType;
using serve::QueryRequest;
using serve::QueryResponse;
using serve::WireStatus;

// ----------------------------- frame scripts -----------------------------

enum class SegKind : int {
  kValidFrame = 0,   // a well-formed frame of a random type
  kGarbage = 1,      // bytes whose first byte breaks the magic -> poison
  kOversized = 2,    // valid magic/version but payload_len > cap -> poison
  kTruncated = 3,    // a valid frame cut short; only legal as the LAST
                     // segment (mid-stream it would corrupt the framing)
};

struct Segment {
  SegKind kind = SegKind::kValidFrame;
  std::string bytes;
  // For kValidFrame: the frame FrameReader must hand back.
  MsgType type = MsgType::kPing;
  std::string payload;
};

struct WireScript {
  std::vector<Segment> segments;
  std::vector<size_t> chunk_sizes;  // cyclic feed sizes, all >= 1
};

std::string EncodeRandomFrame(Rng& rng, MsgType* type_out) {
  std::string out;
  switch (rng.UniformU64(6)) {
    case 0: {
      QueryRequest req;
      req.request_id = rng.Next();
      req.item = static_cast<uint32_t>(rng.UniformU64(1u << 20));
      req.k = static_cast<uint32_t>(rng.UniformU64(200));
      EncodeQuery(req, &out);
      *type_out = MsgType::kQuery;
      break;
    }
    case 1: {
      QueryResponse resp;
      resp.request_id = rng.Next();
      resp.status = static_cast<WireStatus>(rng.UniformU64(5));
      resp.model_version = rng.Next();
      const size_t n = rng.UniformU64(20);
      for (size_t i = 0; i < n; ++i) {
        resp.results.push_back(
            {static_cast<float>(rng.Gaussian()),
             static_cast<uint32_t>(rng.UniformU64(1u << 20))});
      }
      EncodeResponse(resp, &out);
      *type_out = MsgType::kResponse;
      break;
    }
    case 2:
      EncodePing(rng.Next(), &out);
      *type_out = MsgType::kPing;
      break;
    case 3:
      EncodePong(rng.Next(), &out);
      *type_out = MsgType::kPong;
      break;
    case 4:
      EncodeHealth(rng.Next(), &out);
      *type_out = MsgType::kHealth;
      break;
    default: {
      HealthInfo info;
      info.request_id = rng.Next();
      info.ready = rng.Bernoulli(0.5);
      info.model_version = rng.Next();
      info.num_items = static_cast<uint32_t>(rng.UniformU64(1u << 20));
      info.dim = static_cast<uint32_t>(rng.UniformU64(512));
      EncodeHealthResp(info, &out);
      *type_out = MsgType::kHealthResp;
      break;
    }
  }
  return out;
}

Gen<WireScript> WireScriptGen() {
  return Gen<WireScript>([](Rng& rng) {
    WireScript s;
    const size_t n_segments = 1 + rng.UniformU64(12);
    bool poisoned = false;
    for (size_t i = 0; i < n_segments && !poisoned; ++i) {
      Segment seg;
      const bool last = (i + 1 == n_segments);
      const uint64_t roll = rng.UniformU64(10);
      if (roll >= 8) {  // 20%: a stream-ending anomaly
        if (last && rng.Bernoulli(0.5)) {
          seg.kind = SegKind::kTruncated;
          MsgType t;
          const std::string full = EncodeRandomFrame(rng, &t);
          // Keep at least one byte and strictly fewer than the whole frame.
          seg.bytes = full.substr(0, 1 + rng.UniformU64(full.size() - 1));
        } else if (rng.Bernoulli(0.5)) {
          seg.kind = SegKind::kGarbage;
          // At least a full header's worth: the reader only inspects (and
          // poisons on) a bad magic once kFrameHeaderBytes are buffered.
          const size_t len = serve::kFrameHeaderBytes + rng.UniformU64(33);
          for (size_t b = 0; b < len; ++b) {
            seg.bytes.push_back(static_cast<char>(rng.UniformU64(256)));
          }
          // Magic is 0x5153 little-endian; a first byte != 0x53 cannot
          // start a frame, so the poison point is deterministic.
          if (static_cast<uint8_t>(seg.bytes[0]) == 0x53) seg.bytes[0] = 0x00;
          poisoned = true;
        } else {
          seg.kind = SegKind::kOversized;
          // Valid magic + version, declared payload over the 1MB cap.
          const uint32_t len =
              serve::kMaxPayloadBytes + 1 +
              static_cast<uint32_t>(rng.UniformU64(1u << 20));
          seg.bytes.resize(serve::kFrameHeaderBytes);
          seg.bytes[0] = 0x53;
          seg.bytes[1] = 0x51;
          seg.bytes[2] = 1;  // version
          seg.bytes[3] = static_cast<char>(MsgType::kPing);
          std::memcpy(&seg.bytes[4], &len, 4);
          poisoned = true;
        }
        if (seg.kind == SegKind::kTruncated) poisoned = true;  // stream ends
      } else {
        seg.kind = SegKind::kValidFrame;
        seg.bytes = EncodeRandomFrame(rng, &seg.type);
        seg.payload = seg.bytes.substr(serve::kFrameHeaderBytes);
      }
      s.segments.push_back(std::move(seg));
    }
    const size_t n_chunks = 1 + rng.UniformU64(4);
    for (size_t i = 0; i < n_chunks; ++i) {
      s.chunk_sizes.push_back(1 + rng.UniformU64(64));
    }
    return s;
  });
}

std::string ShowScript(const WireScript& s) {
  std::ostringstream os;
  os << "{segments=[";
  for (size_t i = 0; i < s.segments.size(); ++i) {
    if (i) os << ", ";
    switch (s.segments[i].kind) {
      case SegKind::kValidFrame:
        os << "frame(type=" << static_cast<int>(s.segments[i].type)
           << ", payload=" << s.segments[i].payload.size() << "B)";
        break;
      case SegKind::kGarbage:
        os << "garbage(" << s.segments[i].bytes.size() << "B)";
        break;
      case SegKind::kOversized:
        os << "oversized_header";
        break;
      case SegKind::kTruncated:
        os << "truncated(" << s.segments[i].bytes.size() << "B)";
        break;
    }
  }
  os << "], chunks=" << ShowValue(s.chunk_sizes) << "}";
  return os.str();
}

struct Recovered {
  std::vector<std::pair<MsgType, std::string>> frames;
  bool poisoned = false;
  bool starved = false;  // ended on kOk/have=false (waiting for bytes)
};

/// Feeds the script's bytes through a FrameReader in the cyclic chunking and
/// drains frames after every feed. Returns what came out; reports a verdict
/// string on any contract violation.
std::string RunReader(const WireScript& s, Recovered* out) {
  std::string stream;
  for (const Segment& seg : s.segments) stream += seg.bytes;
  FrameReader reader;
  size_t off = 0, chunk_idx = 0;
  bool poisoned = false;
  while (off < stream.size()) {
    const size_t want = s.chunk_sizes[chunk_idx++ % s.chunk_sizes.size()];
    const size_t n = std::min(want, stream.size() - off);
    const Status fed = reader.Feed(stream.data() + off, n);
    off += n;
    if (!fed.ok()) return "Feed rejected in-bound data: " + fed.ToString();
    Frame f;
    bool have = false;
    for (;;) {
      const Status st = reader.Next(&f, &have);
      if (!st.ok()) {
        poisoned = true;
        // Sticky poison: every later call must fail the same way.
        const Status again = reader.Next(&f, &have);
        if (again.ok()) return "poison was not sticky";
        break;
      }
      if (!have) break;
      out->frames.emplace_back(
          f.type, std::string(reinterpret_cast<const char*>(f.payload),
                              f.payload_len));
    }
    if (poisoned) break;
  }
  out->poisoned = poisoned;
  if (!poisoned) {
    Frame f;
    bool have = false;
    const Status st = reader.Next(&f, &have);
    if (!st.ok()) return "reader errored after clean drain: " + st.ToString();
    if (have) return "reader produced a frame from no bytes";
    out->starved = reader.buffered() > 0;
  }
  return "";
}

TEST(PropWire, GeneratedStreamsRecoverFramesAndPoisonDeterministically) {
  const Result r = ForAllSeeded<WireScript>(
      "wire_scripts", 200, WireScriptGen(),
      [](const WireScript& s) -> std::string {
        // Model: every valid frame before the first anomaly is recovered;
        // garbage/oversized poison the stream; truncation starves it.
        std::vector<std::pair<MsgType, std::string>> want;
        bool want_poison = false, want_starved = false;
        for (const Segment& seg : s.segments) {
          if (seg.kind == SegKind::kValidFrame) {
            want.emplace_back(seg.type, seg.payload);
          } else if (seg.kind == SegKind::kTruncated) {
            want_starved = true;
          } else {
            want_poison = true;
          }
        }
        Recovered got;
        const std::string verdict = RunReader(s, &got);
        if (!verdict.empty()) return verdict;
        if (got.poisoned != want_poison) {
          return want_poison ? "anomaly did not poison the reader"
                             : "clean stream was poisoned";
        }
        if (!want_poison && got.starved != want_starved) {
          return want_starved ? "truncated tail did not leave reader waiting"
                              : "reader buffered bytes after a clean stream";
        }
        if (got.frames.size() != want.size()) {
          return "recovered " + std::to_string(got.frames.size()) +
                 " frames, want " + std::to_string(want.size());
        }
        for (size_t i = 0; i < want.size(); ++i) {
          if (got.frames[i].first != want[i].first ||
              got.frames[i].second != want[i].second) {
            return "frame " + std::to_string(i) + " differs from encoded";
          }
        }
        return "";
      },
      nullptr, ShowScript);
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(PropWire, ReaderBehaviorIsInvariantToChunking) {
  const Result r = ForAllSeeded<WireScript>(
      "wire_chunking_invariance", 150, WireScriptGen(),
      [](const WireScript& s) -> std::string {
        Recovered ref;
        std::string verdict = RunReader(s, &ref);
        if (!verdict.empty()) return verdict;
        for (const size_t chunk : {size_t{1}, size_t{3}, size_t{4096}}) {
          WireScript alt = s;
          alt.chunk_sizes = {chunk};
          Recovered got;
          verdict = RunReader(alt, &got);
          if (!verdict.empty()) return verdict;
          if (got.poisoned != ref.poisoned || got.frames != ref.frames) {
            return "chunk size " + std::to_string(chunk) +
                   " changed reader behavior";
          }
        }
        return "";
      },
      nullptr, ShowScript);
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(PropWire, QueryAndResponsePayloadsRoundTrip) {
  const Result r = ForAllSeeded<uint64_t>(
      "wire_payload_round_trip", 200,
      Gen<uint64_t>([](Rng& rng) { return rng.Next(); }),
      [](const uint64_t& seed) -> std::string {
        Rng rng(seed);
        QueryRequest req;
        req.request_id = rng.Next();
        req.item = static_cast<uint32_t>(rng.UniformU64(UINT32_MAX));
        req.k = static_cast<uint32_t>(rng.UniformU64(UINT32_MAX));
        std::string buf;
        EncodeQuery(req, &buf);
        QueryRequest back;
        Status st = DecodeQuery(
            reinterpret_cast<const uint8_t*>(buf.data()) +
                serve::kFrameHeaderBytes,
            static_cast<uint32_t>(buf.size() - serve::kFrameHeaderBytes),
            &back);
        if (!st.ok()) return "query decode failed: " + st.ToString();
        if (back.request_id != req.request_id || back.item != req.item ||
            back.k != req.k) {
          return "query did not round-trip";
        }

        QueryResponse resp;
        resp.request_id = rng.Next();
        resp.status = static_cast<WireStatus>(rng.UniformU64(5));
        resp.model_version = rng.Next();
        const size_t n = rng.UniformU64(50);
        for (size_t i = 0; i < n; ++i) {
          resp.results.push_back(
              {static_cast<float>(rng.Gaussian()),
               static_cast<uint32_t>(rng.UniformU64(UINT32_MAX))});
        }
        buf.clear();
        EncodeResponse(resp, &buf);
        QueryResponse rback;
        st = DecodeResponse(
            reinterpret_cast<const uint8_t*>(buf.data()) +
                serve::kFrameHeaderBytes,
            static_cast<uint32_t>(buf.size() - serve::kFrameHeaderBytes),
            &rback);
        if (!st.ok()) return "response decode failed: " + st.ToString();
        if (rback.request_id != resp.request_id ||
            rback.status != resp.status ||
            rback.model_version != resp.model_version ||
            rback.results.size() != resp.results.size()) {
          return "response header did not round-trip";
        }
        for (size_t i = 0; i < n; ++i) {
          if (rback.results[i].id != resp.results[i].id ||
              std::memcmp(&rback.results[i].score, &resp.results[i].score,
                          sizeof(float)) != 0) {
            return "result " + std::to_string(i) + " did not round-trip";
          }
        }

        HealthInfo info;
        info.request_id = rng.Next();
        info.ready = rng.Bernoulli(0.5);
        info.model_version = rng.Next();
        info.num_items = static_cast<uint32_t>(rng.UniformU64(UINT32_MAX));
        info.dim = static_cast<uint32_t>(rng.UniformU64(UINT32_MAX));
        buf.clear();
        EncodeHealthResp(info, &buf);
        HealthInfo hback;
        st = DecodeHealthResp(
            reinterpret_cast<const uint8_t*>(buf.data()) +
                serve::kFrameHeaderBytes,
            static_cast<uint32_t>(buf.size() - serve::kFrameHeaderBytes),
            &hback);
        if (!st.ok()) return "health decode failed: " + st.ToString();
        if (hback.request_id != info.request_id || hback.ready != info.ready ||
            hback.model_version != info.model_version ||
            hback.num_items != info.num_items || hback.dim != info.dim) {
          return "health info did not round-trip";
        }
        return "";
      });
  EXPECT_TRUE(r.ok) << r.message;
}

// --------------------- coalesced serving bit-identity ---------------------

struct BatchCase {
  uint64_t engine_seed = 0;
  uint32_t num_items = 2;
  uint32_t dim = 4;
  bool int8 = false;
  std::vector<uint32_t> items;
  std::vector<uint32_t> ks;
};

std::string ShowBatch(const BatchCase& c) {
  std::ostringstream os;
  os << "{engine_seed=" << c.engine_seed << ", num_items=" << c.num_items
     << ", dim=" << c.dim << ", int8=" << c.int8
     << ", items=" << ShowValue(c.items) << ", ks=" << ShowValue(c.ks) << "}";
  return os.str();
}

TEST(PropWire, CoalescedBatchAnswersBitIdenticalToOfflineQueries) {
  const auto gen = Gen<BatchCase>([](Rng& rng) {
    BatchCase c;
    c.engine_seed = rng.Next();
    c.num_items = static_cast<uint32_t>(rng.UniformInt(2, 60));
    c.dim = static_cast<uint32_t>(rng.UniformInt(2, 48));
    c.int8 = rng.Bernoulli(0.5);
    const size_t n = 1 + rng.UniformU64(24);
    for (size_t i = 0; i < n; ++i) {
      c.items.push_back(static_cast<uint32_t>(rng.UniformU64(c.num_items)));
      // k stresses the edges: 0, 1, around num_items, and beyond.
      c.ks.push_back(static_cast<uint32_t>(
          rng.UniformU64(c.num_items + 3)));
    }
    return c;
  });
  const Result r = ForAllSeeded<BatchCase>(
      "coalesced_bit_identity", 120, gen,
      [](const BatchCase& c) -> std::string {
        Rng rng(c.engine_seed);
        std::vector<float> in(static_cast<size_t>(c.num_items) * c.dim);
        for (float& v : in) v = static_cast<float>(rng.Gaussian());
        MatchingEngine engine;
        const Status st = engine.Build(std::move(in), {}, c.num_items, c.dim,
                                       SimilarityMode::kCosineInput);
        if (!st.ok()) return "engine build failed: " + st.ToString();
        if (c.int8) {
          const Status q = engine.EnableInt8();
          if (!q.ok()) return "int8 enable failed: " + q.ToString();
        }

        std::vector<std::vector<ScoredId>> offline;
        for (size_t i = 0; i < c.items.size(); ++i) {
          offline.push_back(engine.Query(c.items[i], c.ks[i]));
        }

        ThreadPool pool(3);
        const auto check =
            [&](const std::vector<std::vector<ScoredId>>& got,
                const char* what) -> std::string {
          if (got.size() != offline.size()) {
            return std::string(what) + ": batch size mismatch";
          }
          for (size_t i = 0; i < got.size(); ++i) {
            if (got[i].size() != offline[i].size()) {
              return std::string(what) + ": query " + std::to_string(i) +
                     " result count differs";
            }
            for (size_t j = 0; j < got[i].size(); ++j) {
              if (got[i][j].id != offline[i][j].id ||
                  std::memcmp(&got[i][j].score, &offline[i][j].score,
                              sizeof(float)) != 0) {
                return std::string(what) + ": query " + std::to_string(i) +
                       " rank " + std::to_string(j) + " not bit-identical";
              }
            }
          }
          return "";
        };

        std::string verdict =
            check(engine.QueryBatchCoalesced(c.items.data(), c.ks.data(),
                                             c.items.size()),
                  "serial");
        if (verdict.empty()) {
          verdict =
              check(engine.QueryBatchCoalesced(c.items.data(), c.ks.data(),
                                               c.items.size(), &pool),
                    "pooled");
        }
        return verdict;
      },
      nullptr, ShowBatch);
  EXPECT_TRUE(r.ok) << r.message;
}

}  // namespace
}  // namespace sisg::prop
