// Parity and regression tests of the SIMD-blocked retrieval path: the
// blocked MatchingEngine scan against a pinned scalar brute-force reference
// (both similarity modes, dims 1..256), the batched multi-query serving
// APIs, and the IVF clamping/validation behavior. The CMake suite runs this
// binary twice: once with the default dispatch and once pinned to
// SISG_SIMD=scalar, where every comparison must be bit-exact.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/quant.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/top_k.h"
#include "core/hnsw_index.h"
#include "core/ivf_index.h"
#include "core/matching_engine.h"
#include "core/pq.h"

namespace sisg {
namespace {

// Dims straddling the 8-lane and 4-row tile boundaries of the AVX2 kernels.
const uint32_t kParityDims[] = {1, 3, 7, 8, 9, 16, 31, 64, 100, 128, 256};

std::vector<float> RandomMatrix(Rng& rng, uint32_t rows, uint32_t dim,
                                const std::set<uint32_t>& zero_rows) {
  std::vector<float> m(static_cast<size_t>(rows) * dim);
  for (auto& x : m) x = rng.UniformFloat() * 2.0f - 1.0f;
  for (uint32_t r : zero_rows) {
    for (uint32_t d = 0; d < dim; ++d) m[static_cast<size_t>(r) * dim + d] = 0.0f;
  }
  return m;
}

/// The pre-change retrieval loop, pinned: per-candidate scalar dot in
/// declaration order, one TopKSelector push per trained candidate.
std::vector<ScoredId> BruteForceRef(const MatchingEngine& engine,
                                    const float* query, uint32_t k,
                                    uint32_t exclude) {
  TopKSelector sel(k);
  const std::vector<float>& cand = engine.candidate_matrix();
  const uint32_t dim = engine.dim();
  for (uint32_t c = 0; c < engine.num_items(); ++c) {
    if (c == exclude || !engine.HasItem(c)) continue;
    const float* row = cand.data() + static_cast<size_t>(c) * dim;
    float acc = 0.0f;
    for (uint32_t d = 0; d < dim; ++d) acc += query[d] * row[d];
    sel.Push(acc, c);
  }
  return sel.Take();
}

/// Exact under scalar dispatch; under a vector dispatch the ids may permute
/// only among candidates whose reference scores agree to float-reassociation
/// error, and every returned score must match that id's reference score.
void ExpectResultsMatch(const MatchingEngine& engine,
                        const std::vector<ScoredId>& blocked,
                        const std::vector<ScoredId>& ref, const float* query,
                        const char* what) {
  ASSERT_EQ(blocked.size(), ref.size()) << what;
  if (GetSimdOps().level == SimdLevel::kScalar) {
    for (size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(blocked[i].id, ref[i].id) << what << " rank " << i;
      EXPECT_EQ(blocked[i].score, ref[i].score) << what << " rank " << i;
    }
    return;
  }
  const std::vector<float>& cand = engine.candidate_matrix();
  const uint32_t dim = engine.dim();
  constexpr float kTol = 2e-5f;
  for (size_t i = 0; i < ref.size(); ++i) {
    // Rank-wise scores agree even if near-ties swapped ids.
    EXPECT_NEAR(blocked[i].score, ref[i].score, kTol) << what << " rank " << i;
    // Each returned score is the true (scalar) score of its id.
    const float* row = cand.data() + static_cast<size_t>(blocked[i].id) * dim;
    float acc = 0.0f;
    for (uint32_t d = 0; d < dim; ++d) acc += query[d] * row[d];
    EXPECT_NEAR(blocked[i].score, acc, kTol) << what << " id " << blocked[i].id;
  }
}

// --------------------------- blocked engine scan ---------------------------

class EngineParity : public ::testing::TestWithParam<SimilarityMode> {};

TEST_P(EngineParity, BlockedQueryMatchesScalarReferenceAcrossDims) {
  const SimilarityMode mode = GetParam();
  Rng rng(101);
  const uint32_t n = 220, k = 10;
  for (uint32_t dim : kParityDims) {
    // A few untrained (zero) rows exercise the compaction path.
    const std::set<uint32_t> zeros = {0, 5, n - 1};
    auto in = RandomMatrix(rng, n, dim, zeros);
    auto out = RandomMatrix(rng, n, dim, zeros);
    MatchingEngine engine;
    ASSERT_TRUE(engine.Build(in, out, n, dim, mode).ok()) << "dim=" << dim;
    for (uint32_t item : {1u, 7u, 100u}) {
      const auto blocked = engine.Query(item, k);
      const auto ref = BruteForceRef(engine, engine.QueryRow(item), k, item);
      ExpectResultsMatch(engine, blocked, ref, engine.QueryRow(item), "Query");
      // The query item itself must never be retrieved.
      for (const auto& r : blocked) EXPECT_NE(r.id, item) << "dim=" << dim;
    }
    // Untrained items return nothing.
    EXPECT_TRUE(engine.Query(0, k).empty()) << "dim=" << dim;
    EXPECT_TRUE(engine.Query(n + 3, k).empty()) << "dim=" << dim;
  }
}

TEST_P(EngineParity, BlockedQueryVectorMatchesScalarReference) {
  const SimilarityMode mode = GetParam();
  Rng rng(102);
  const uint32_t n = 150, k = 7;
  for (uint32_t dim : {1u, 9u, 100u, 128u}) {
    auto in = RandomMatrix(rng, n, dim, {2});
    auto out = RandomMatrix(rng, n, dim, {2});
    MatchingEngine engine;
    ASSERT_TRUE(engine.Build(in, out, n, dim, mode).ok());
    std::vector<float> q(dim);
    for (auto& x : q) x = rng.UniformFloat() * 2.0f - 1.0f;
    // QueryVector normalizes in cosine mode; reproduce that for the ref.
    std::vector<float> prepared = q;
    if (mode == SimilarityMode::kCosineInput) {
      float norm = 0.0f;
      for (float x : prepared) norm += x * x;
      norm = std::sqrt(norm);
      // Reciprocal-multiply, matching QueryVector's Scale() bit-for-bit.
      const float inv = 1.0f / norm;
      for (auto& x : prepared) x *= inv;
    }
    const auto blocked = engine.QueryVector(q.data(), k);
    const auto ref = BruteForceRef(engine, prepared.data(), k, UINT32_MAX);
    ExpectResultsMatch(engine, blocked, ref, prepared.data(), "QueryVector");
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, EngineParity,
                         ::testing::Values(SimilarityMode::kCosineInput,
                                           SimilarityMode::kDirectionalInOut));

TEST(EngineParityTest, AllNegativeScoresStillReturnK) {
  // Regression companion to the TopKSelector::Threshold fix: an anti-aligned
  // corpus scores every candidate negative, and the blocked scan must still
  // collect k of them rather than prune everything against a 0 threshold.
  const uint32_t n = 40, dim = 8, k = 5;
  std::vector<float> in(static_cast<size_t>(n) * dim, 0.0f);
  for (uint32_t r = 0; r < n; ++r) {
    // Query row 0 is +e0; every other row is -e0 scaled.
    in[static_cast<size_t>(r) * dim] = r == 0 ? 1.0f : -(1.0f + r * 0.01f);
  }
  MatchingEngine engine;
  ASSERT_TRUE(engine.Build(in, {}, n, dim, SimilarityMode::kCosineInput).ok());
  const auto res = engine.Query(0, k);
  ASSERT_EQ(res.size(), k);
  for (const auto& r : res) EXPECT_LT(r.score, 0.0f);
}

// --------------------------- batched serving ---------------------------

TEST(QueryBatchTest, EngineBatchMatchesSerialQueries) {
  Rng rng(103);
  const uint32_t n = 300, dim = 24, k = 8;
  auto in = RandomMatrix(rng, n, dim, {11});
  MatchingEngine engine;
  ASSERT_TRUE(engine.Build(in, {}, n, dim, SimilarityMode::kCosineInput).ok());
  std::vector<uint32_t> items;
  for (uint32_t i = 0; i < n; i += 3) items.push_back(i);
  const auto serial = engine.QueryBatch(items, k, 1);
  const auto parallel = engine.QueryBatch(items, k, 4);
  ASSERT_EQ(serial.size(), items.size());
  ASSERT_EQ(parallel.size(), items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    const auto direct = engine.Query(items[i], k);
    ASSERT_EQ(serial[i].size(), direct.size());
    ASSERT_EQ(parallel[i].size(), direct.size());
    for (size_t j = 0; j < direct.size(); ++j) {
      EXPECT_EQ(serial[i][j], direct[j]);
      EXPECT_EQ(parallel[i][j], direct[j]);
    }
  }
}

TEST(QueryBatchTest, IvfBatchMatchesSerialQueries) {
  Rng rng(104);
  const uint32_t n = 500, dim = 12, k = 6;
  std::vector<float> data(static_cast<size_t>(n) * dim);
  for (auto& x : data) x = rng.UniformFloat() - 0.5f;
  IvfIndex index;
  IvfOptions opts;
  opts.kmeans.num_clusters = 8;
  opts.nprobe = 4;
  ASSERT_TRUE(index.Build(data.data(), n, dim, opts).ok());
  const uint32_t num_queries = 20;
  std::vector<uint32_t> excludes(num_queries);
  for (uint32_t i = 0; i < num_queries; ++i) excludes[i] = i;
  std::vector<std::vector<ScoredId>> serial, parallel;
  ASSERT_TRUE(index
                  .QueryBatch(data.data(), num_queries, dim, k, 1, &serial,
                              excludes.data())
                  .ok());
  ASSERT_TRUE(index
                  .QueryBatch(data.data(), num_queries, dim, k, 4, &parallel,
                              excludes.data())
                  .ok());
  for (uint32_t i = 0; i < num_queries; ++i) {
    const auto direct =
        index.Query(data.data() + static_cast<size_t>(i) * dim, k, i);
    ASSERT_EQ(serial[i].size(), direct.size());
    for (size_t j = 0; j < direct.size(); ++j) {
      EXPECT_EQ(serial[i][j], direct[j]);
      EXPECT_EQ(parallel[i][j], direct[j]);
    }
  }
}

TEST(QueryBatchTest, HnswBatchMatchesSerialQueries) {
  Rng rng(105);
  const uint32_t n = 400, dim = 16, k = 5;
  std::vector<float> data(static_cast<size_t>(n) * dim);
  for (auto& x : data) x = rng.UniformFloat() - 0.5f;
  HnswIndex index;
  ASSERT_TRUE(index.Build(data.data(), n, dim, HnswOptions{}).ok());
  const uint32_t num_queries = 15;
  std::vector<std::vector<ScoredId>> serial, parallel;
  ASSERT_TRUE(
      index.QueryBatch(data.data(), num_queries, dim, k, 1, &serial).ok());
  ASSERT_TRUE(
      index.QueryBatch(data.data(), num_queries, dim, k, 4, &parallel).ok());
  for (uint32_t i = 0; i < num_queries; ++i) {
    const auto direct =
        index.Query(data.data() + static_cast<size_t>(i) * dim, k);
    ASSERT_EQ(serial[i].size(), direct.size());
    for (size_t j = 0; j < direct.size(); ++j) {
      EXPECT_EQ(serial[i][j], direct[j]);
      EXPECT_EQ(parallel[i][j], direct[j]);
    }
  }
}

TEST(QueryBatchTest, RejectsDegenerateInputs) {
  Rng rng(106);
  const uint32_t n = 100, dim = 8;
  std::vector<float> data(static_cast<size_t>(n) * dim);
  for (auto& x : data) x = rng.UniformFloat() - 0.5f;
  IvfIndex ivf;
  IvfOptions iopts;
  iopts.kmeans.num_clusters = 4;
  ASSERT_TRUE(ivf.Build(data.data(), n, dim, iopts).ok());
  HnswIndex hnsw;
  ASSERT_TRUE(hnsw.Build(data.data(), n, dim, HnswOptions{}).ok());
  std::vector<std::vector<ScoredId>> out;

  EXPECT_EQ(ivf.QueryBatch(data.data(), 10, dim, 0, 1, &out).code(),
            StatusCode::kInvalidArgument);  // k == 0
  EXPECT_EQ(ivf.QueryBatch(data.data(), 10, dim + 1, 5, 1, &out).code(),
            StatusCode::kInvalidArgument);  // dim mismatch
  EXPECT_EQ(ivf.QueryBatch(nullptr, 10, dim, 5, 1, &out).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(hnsw.QueryBatch(data.data(), 10, dim, 0, 1, &out).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(hnsw.QueryBatch(data.data(), 10, dim - 3, 5, 1, &out).code(),
            StatusCode::kInvalidArgument);
  IvfIndex unbuilt;
  EXPECT_EQ(unbuilt.QueryBatch(data.data(), 10, dim, 5, 1, &out).code(),
            StatusCode::kFailedPrecondition);

  std::vector<ScoredId> one;
  EXPECT_EQ(ivf.QueryChecked(data.data(), dim, 0, UINT32_MAX, &one).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ivf.QueryChecked(data.data(), dim + 2, 5, UINT32_MAX, &one).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(ivf.QueryChecked(data.data(), dim, 5, UINT32_MAX, &one).ok());
  EXPECT_EQ(one.size(), 5u);
}

// --------------------------- IVF clamping & recall ---------------------------

TEST(IvfClampTest, NprobeClampedToNonEmptyLists) {
  Rng rng(107);
  const uint32_t n = 60, dim = 6;
  std::vector<float> data(static_cast<size_t>(n) * dim);
  for (auto& x : data) x = rng.UniformFloat() - 0.5f;
  IvfIndex index;
  IvfOptions opts;
  opts.kmeans.num_clusters = 8;
  opts.nprobe = 1000;  // far more than there are lists
  ASSERT_TRUE(index.Build(data.data(), n, dim, opts).ok());
  EXPECT_LE(index.effective_nprobe(), 8u);
  EXPECT_GE(index.effective_nprobe(), 1u);
  // Probing "everything" is now exact: matches brute force.
  TopKSelector exact(5);
  for (uint32_t c = 1; c < n; ++c) {
    const float* row = data.data() + static_cast<size_t>(c) * dim;
    float acc = 0.0f;
    for (uint32_t d = 0; d < dim; ++d) acc += data[d] * row[d];
    exact.Push(acc, c);
  }
  const auto truth = exact.Take();
  const auto res = index.Query(data.data(), 5, 0);
  ASSERT_EQ(res.size(), truth.size());
  for (size_t i = 0; i < truth.size(); ++i) EXPECT_EQ(res[i].id, truth[i].id);
}

TEST(IvfRecallRegression, Recall10AtLeastPreChangeImplementation) {
  // Fixed-seed recall@10 of the contiguous-list implementation. The
  // pre-change per-vector implementation measured 0.800 on this exact
  // setup (seed 7, n=2000, dim=16, 16 clusters, nprobe=4); the blocked
  // rewrite probes the same lists, so recall must not drop below it.
  Rng rng(7);
  const uint32_t n = 2000, dim = 16, k = 10;
  std::vector<float> data(static_cast<size_t>(n) * dim);
  for (auto& x : data) x = rng.UniformFloat() - 0.5f;
  IvfIndex index;
  IvfOptions opts;
  opts.kmeans.num_clusters = 16;
  opts.nprobe = 4;
  ASSERT_TRUE(index.Build(data.data(), n, dim, opts).ok());
  double recall = 0.0;
  const uint32_t queries = 50;
  for (uint32_t q = 0; q < queries; ++q) {
    const float* qv = data.data() + static_cast<size_t>(q) * dim;
    TopKSelector exact(k);
    for (uint32_t c = 0; c < n; ++c) {
      if (c == q) continue;
      const float* row = data.data() + static_cast<size_t>(c) * dim;
      float acc = 0.0f;
      for (uint32_t d = 0; d < dim; ++d) acc += qv[d] * row[d];
      exact.Push(acc, c);
    }
    const auto truth = exact.Take();
    const auto approx = index.Query(qv, k, q);
    int common = 0;
    for (const auto& a : truth) {
      for (const auto& b : approx) common += a.id == b.id;
    }
    recall += static_cast<double>(common) / k;
  }
  recall /= queries;
  // Tiny slack: the recall average itself accumulates in floating point.
  EXPECT_GE(recall, 0.800 - 1e-9)
      << "recall@10 dropped below the pre-change baseline";
}

// --------------------------- int8 quantization ---------------------------

TEST(Int8QuantTest, RowReconstructionErrorBoundedByHalfStep) {
  Rng rng(201);
  for (uint32_t dim : kParityDims) {
    std::vector<float> row(dim);
    for (auto& x : row) x = (rng.UniformFloat() * 2.0f - 1.0f) * 3.0f;
    std::vector<uint8_t> codes(dim);
    float scale = -1.0f, lo = 0.0f;
    QuantizeRowInt8(row.data(), dim, codes.data(), &scale, &lo);
    ASSERT_GE(scale, 0.0f) << "dim=" << dim;
    for (uint32_t d = 0; d < dim; ++d) {
      const float rec = lo + scale * static_cast<float>(codes[d]);
      // Rounding to the nearest of 256 levels: at most half a step off
      // (plus float epsilon on the reconstruction arithmetic itself).
      EXPECT_LE(std::abs(row[d] - rec), scale * 0.5f + 1e-6f)
          << "dim=" << dim << " d=" << d;
    }
  }
  // A constant row has a zero step and reconstructs exactly.
  std::vector<float> flat(32, 0.75f);
  std::vector<uint8_t> codes(32);
  float scale = -1.0f, lo = 0.0f;
  QuantizeRowInt8(flat.data(), 32, codes.data(), &scale, &lo);
  EXPECT_EQ(scale, 0.0f);
  for (uint32_t d = 0; d < 32; ++d) {
    EXPECT_EQ(lo + scale * static_cast<float>(codes[d]), 0.75f);
  }
}

TEST(Int8QuantTest, QueryReconstructionErrorBoundedByHalfStep) {
  Rng rng(202);
  for (uint32_t dim : kParityDims) {
    std::vector<float> q(dim);
    for (auto& x : q) x = (rng.UniformFloat() * 2.0f - 1.0f) * 2.0f;
    std::vector<int8_t> codes(dim);
    const Int8Query iq = QuantizeQueryInt8(q.data(), dim, codes.data());
    int32_t sum = 0;
    for (uint32_t d = 0; d < dim; ++d) {
      sum += codes[d];
      const float rec = iq.scale * static_cast<float>(codes[d]);
      EXPECT_LE(std::abs(q[d] - rec), iq.scale * 0.5f + 1e-6f)
          << "dim=" << dim << " d=" << d;
    }
    EXPECT_EQ(iq.sum, sum) << "dim=" << dim;
    EXPECT_EQ(iq.codes, codes.data()) << "dim=" << dim;
  }
}

// Packs n quantized random rows at the arena stride and returns the query
// alongside, so each kernel test scans realistic padded-stride data.
struct Int8Fixture {
  uint32_t n, dim;
  size_t stride;
  AlignedByteVector rows;
  std::vector<float> scales, mins, frows;
  std::vector<int8_t> qcodes;
  std::vector<float> q;
  Int8Query iq;

  Int8Fixture(Rng& rng, uint32_t n_, uint32_t dim_) : n(n_), dim(dim_) {
    stride = AlignedByteStride(dim);
    rows.assign(static_cast<size_t>(n) * stride, 0);
    scales.resize(n);
    mins.resize(n);
    frows.resize(static_cast<size_t>(n) * dim);
    for (uint32_t r = 0; r < n; ++r) {
      float* frow = frows.data() + static_cast<size_t>(r) * dim;
      for (uint32_t d = 0; d < dim; ++d) {
        frow[d] = rng.UniformFloat() * 2.0f - 1.0f;
      }
      QuantizeRowInt8(frow, dim, rows.data() + static_cast<size_t>(r) * stride,
                      &scales[r], &mins[r]);
    }
    q.resize(dim);
    for (auto& x : q) x = rng.UniformFloat() * 2.0f - 1.0f;
    qcodes.resize(dim);
    iq = QuantizeQueryInt8(q.data(), dim, qcodes.data());
  }
};

TEST(Int8KernelParity, DispatchedKernelsMatchScalarBitExact) {
  // Integer accumulation is exact and the dequantization is one shared float
  // expression, so unlike the fp32 kernels the int8 scan must agree with the
  // scalar reference bit-for-bit under EVERY dispatch level.
  const SimdOps& ops = GetSimdOps();
  Rng rng(203);
  for (uint32_t dim : kParityDims) {
    Int8Fixture f(rng, 70, dim);
    std::vector<int32_t> idots_ref(f.n), idots_got(f.n);
    simd_scalar::DotBatchI8(f.iq.codes, f.rows.data(), f.stride, f.n, dim,
                            idots_ref.data());
    ops.dot_batch_i8(f.iq.codes, f.rows.data(), f.stride, f.n, dim,
                     idots_got.data());
    for (uint32_t r = 0; r < f.n; ++r) {
      EXPECT_EQ(ops.dot_i8(f.iq.codes, f.rows.data() + r * f.stride, dim),
                idots_ref[r])
          << "dim=" << dim << " row=" << r;
      EXPECT_EQ(idots_got[r], idots_ref[r]) << "dim=" << dim << " row=" << r;
    }
    TopKSelector ref_sel(10), got_sel(10);
    simd_scalar::TopKScanI8(f.iq, f.rows.data(), f.stride, f.scales.data(),
                            f.mins.data(), f.n, dim, nullptr, 3, &ref_sel);
    ops.top_k_scan_i8(f.iq, f.rows.data(), f.stride, f.scales.data(),
                      f.mins.data(), f.n, dim, nullptr, 3, &got_sel);
    const auto ref = ref_sel.Take();
    const auto got = got_sel.Take();
    ASSERT_EQ(got.size(), ref.size()) << "dim=" << dim;
    for (size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(got[i].id, ref[i].id) << "dim=" << dim << " rank " << i;
      EXPECT_EQ(got[i].score, ref[i].score) << "dim=" << dim << " rank " << i;
      EXPECT_NE(got[i].id, 3u) << "exclude leaked, dim=" << dim;
    }
  }
}

TEST(AdcKernelParity, DispatchedAdcMatchesScalarWithinTolerance) {
  // The AVX2 gather sums subspaces in a different order than scalar, so ADC
  // parity is toleranced like the fp32 kernels, not bit-exact.
  const SimdOps& ops = GetSimdOps();
  Rng rng(204);
  for (uint32_t m : {1u, 4u, 8u, 13u, 16u, 32u}) {
    const uint32_t n = 120;
    std::vector<float> table(static_cast<size_t>(m) * 256);
    for (auto& x : table) x = rng.UniformFloat() * 2.0f - 1.0f;
    std::vector<uint8_t> codes(static_cast<size_t>(n) * m);
    for (auto& c : codes) {
      c = static_cast<uint8_t>(rng.UniformFloat() * 255.0f);
    }
    TopKSelector ref_sel(10), got_sel(10);
    simd_scalar::AdcScan(table.data(), codes.data(), m, n, nullptr, UINT32_MAX,
                         &ref_sel);
    ops.adc_scan(table.data(), codes.data(), m, n, nullptr, UINT32_MAX,
                 &got_sel);
    const auto ref = ref_sel.Take();
    const auto got = got_sel.Take();
    ASSERT_EQ(got.size(), ref.size()) << "m=" << m;
    constexpr float kTol = 2e-5f;
    for (size_t i = 0; i < ref.size(); ++i) {
      EXPECT_NEAR(got[i].score, ref[i].score, kTol) << "m=" << m << " rank " << i;
      // Each returned score is the true scalar ADC sum of its id.
      float acc = 0.0f;
      for (uint32_t s = 0; s < m; ++s) {
        acc += table[s * 256 + codes[got[i].id * m + s]];
      }
      EXPECT_NEAR(got[i].score, acc, kTol) << "m=" << m << " id " << got[i].id;
    }
  }
}

// --------------------------- quantized recall pins ---------------------------

TEST(QuantRecallPin, Int8ScanRecall10Within1PercentOfFp32) {
  Rng rng(205);
  const uint32_t n = 1500, dim = 32, k = 10, queries = 60;
  auto in = RandomMatrix(rng, n, dim, {});
  MatchingEngine engine;
  ASSERT_TRUE(
      engine.Build(in, {}, n, dim, SimilarityMode::kCosineInput).ok());
  std::vector<std::vector<ScoredId>> fp32(queries);
  for (uint32_t q = 0; q < queries; ++q) fp32[q] = engine.Query(q, k);
  ASSERT_TRUE(engine.EnableInt8().ok());
  ASSERT_EQ(engine.quant_mode(), QuantMode::kInt8);
  double recall = 0.0;
  for (uint32_t q = 0; q < queries; ++q) {
    const auto got = engine.Query(q, k);
    ASSERT_EQ(got.size(), fp32[q].size());
    int common = 0;
    for (const auto& a : fp32[q]) {
      for (const auto& b : got) common += a.id == b.id;
    }
    recall += static_cast<double>(common) / k;
    // Rerank is exact, so every returned score is the true fp32 score.
    for (const auto& b : got) {
      float acc = 0.0f;
      const float* qrow = engine.QueryRow(q);
      const float* crow =
          engine.candidate_matrix().data() + static_cast<size_t>(b.id) * dim;
      for (uint32_t d = 0; d < dim; ++d) acc += qrow[d] * crow[d];
      EXPECT_NEAR(b.score, acc, 2e-5f);
    }
  }
  recall /= queries;
  EXPECT_GE(recall, 0.99) << "int8 shortlist lost more than 1% recall@10";
}

TEST(QuantRecallPin, IvfPqRecall10Within2PercentOfIvfFp32) {
  Rng rng(206);
  const uint32_t n = 2000, dim = 16, k = 10, queries = 50;
  std::vector<float> data(static_cast<size_t>(n) * dim);
  for (auto& x : data) x = rng.UniformFloat() - 0.5f;
  IvfOptions opts;
  opts.kmeans.num_clusters = 16;
  opts.nprobe = 4;
  IvfIndex fp32_index;
  ASSERT_TRUE(fp32_index.Build(data.data(), n, dim, opts).ok());
  IvfIndex pq_index;
  ASSERT_TRUE(pq_index.Build(data.data(), n, dim, opts).ok());
  PqOptions pq;
  pq.m = 8;  // dsub = 2 at dim 16
  ASSERT_TRUE(pq_index.EnablePq(pq).ok());
  ASSERT_TRUE(pq_index.pq_enabled());
  double delta = 0.0;
  for (uint32_t q = 0; q < queries; ++q) {
    const float* qv = data.data() + static_cast<size_t>(q) * dim;
    const auto exact_fp32 = fp32_index.Query(qv, k, q);
    const auto approx = pq_index.Query(qv, k, q);
    int common = 0;
    for (const auto& a : exact_fp32) {
      for (const auto& b : approx) common += a.id == b.id;
    }
    delta += 1.0 - static_cast<double>(common) / k;
  }
  delta /= queries;
  EXPECT_LE(delta, 0.02)
      << "ADC shortlist + rerank diverged >2% from the fp32 IVF scan";
}

// --------------------------- arena bit-identity ---------------------------

TEST(ArenaServing, HeapAndMmapLoadsMatchOriginalBitExact) {
  Rng rng(207);
  const uint32_t n = 300, dim = 24, k = 8;
  const std::set<uint32_t> zeros = {4, 99};
  auto in = RandomMatrix(rng, n, dim, zeros);
  auto out = RandomMatrix(rng, n, dim, zeros);
  for (SimilarityMode mode :
       {SimilarityMode::kCosineInput, SimilarityMode::kDirectionalInOut}) {
    MatchingEngine original;
    ASSERT_TRUE(original.Build(in, out, n, dim, mode).ok());
    const std::string path = ::testing::TempDir() + "/retrieval.arena";
    ASSERT_TRUE(original.SaveArena(path).ok());

    MatchingEngine heap, mapped;
    ASSERT_TRUE(heap.LoadArena(path, /*use_mmap=*/false).ok());
    ASSERT_TRUE(mapped.LoadArena(path, /*use_mmap=*/true).ok());
    EXPECT_TRUE(heap.arena_backed());
    EXPECT_TRUE(mapped.arena_backed());
    ASSERT_EQ(heap.num_items(), n);
    ASSERT_EQ(mapped.dim(), dim);
    EXPECT_EQ(mapped.mode(), mode);

    for (uint32_t item = 0; item < n; item += 7) {
      const auto want = original.Query(item, k);
      const auto got_heap = heap.Query(item, k);
      const auto got_map = mapped.Query(item, k);
      ASSERT_EQ(got_heap.size(), want.size()) << "item " << item;
      ASSERT_EQ(got_map.size(), want.size()) << "item " << item;
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got_heap[i], want[i]) << "item " << item << " rank " << i;
        EXPECT_EQ(got_map[i], want[i]) << "item " << item << " rank " << i;
      }
    }
    // Untrained rows stay unknown through the arena round trip.
    EXPECT_FALSE(heap.HasItem(4));
    EXPECT_TRUE(mapped.Query(99, k).empty());
  }
}

TEST(ArenaServing, Int8ArtifactServesIdenticallyHeapAndMmap) {
  Rng rng(208);
  const uint32_t n = 400, dim = 48, k = 10;
  auto in = RandomMatrix(rng, n, dim, {});
  MatchingEngine original;
  ASSERT_TRUE(
      original.Build(in, {}, n, dim, SimilarityMode::kCosineInput).ok());
  const std::string arena_path = ::testing::TempDir() + "/retrieval2.arena";
  const std::string qarena_path = ::testing::TempDir() + "/retrieval2.qarena";
  ASSERT_TRUE(original.SaveArena(arena_path).ok());
  ASSERT_TRUE(original.EnableInt8().ok());
  ASSERT_TRUE(original.SaveInt8(qarena_path).ok());

  MatchingEngine heap, mapped;
  ASSERT_TRUE(heap.LoadArena(arena_path, /*use_mmap=*/false).ok());
  ASSERT_TRUE(heap.EnableInt8FromFile(qarena_path, /*use_mmap=*/false).ok());
  ASSERT_TRUE(mapped.LoadArena(arena_path, /*use_mmap=*/true).ok());
  ASSERT_TRUE(mapped.EnableInt8FromFile(qarena_path, /*use_mmap=*/true).ok());
  EXPECT_EQ(heap.quant_mode(), QuantMode::kInt8);
  EXPECT_EQ(mapped.quant_mode(), QuantMode::kInt8);
  EXPECT_FALSE(mapped.degraded());

  for (uint32_t item = 0; item < n; item += 13) {
    const auto want = original.Query(item, k);
    const auto got_heap = heap.Query(item, k);
    const auto got_map = mapped.Query(item, k);
    ASSERT_EQ(got_heap.size(), want.size()) << "item " << item;
    ASSERT_EQ(got_map.size(), want.size()) << "item " << item;
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got_heap[i], want[i]) << "item " << item << " rank " << i;
      EXPECT_EQ(got_map[i], want[i]) << "item " << item << " rank " << i;
    }
  }
}

TEST(HnswInt8Traversal, RecallCloseToFp32AndScoresExact) {
  Rng rng(209);
  const uint32_t n = 800, dim = 32, k = 10, queries = 40;
  std::vector<float> data(static_cast<size_t>(n) * dim);
  for (auto& x : data) x = rng.UniformFloat() - 0.5f;
  HnswOptions fp32_opts;
  HnswOptions i8_opts;
  i8_opts.int8_traversal = true;
  HnswIndex fp32_index, i8_index;
  ASSERT_TRUE(fp32_index.Build(data.data(), n, dim, fp32_opts).ok());
  ASSERT_TRUE(i8_index.Build(data.data(), n, dim, i8_opts).ok());
  double delta = 0.0;
  for (uint32_t q = 0; q < queries; ++q) {
    const float* qv = data.data() + static_cast<size_t>(q) * dim;
    const auto want = fp32_index.Query(qv, k, q);
    const auto got = i8_index.Query(qv, k, q);
    int common = 0;
    for (const auto& a : want) {
      for (const auto& b : got) common += a.id == b.id;
    }
    delta += 1.0 - static_cast<double>(common) / k;
    // The ef survivors are re-scored exactly, so every returned score is a
    // true fp32 inner product.
    for (const auto& b : got) {
      const float* row = data.data() + static_cast<size_t>(b.id) * dim;
      float acc = 0.0f;
      for (uint32_t d = 0; d < dim; ++d) acc += qv[d] * row[d];
      EXPECT_NEAR(b.score, acc, 2e-5f) << "q=" << q << " id=" << b.id;
    }
  }
  delta /= queries;
  EXPECT_LE(delta, 0.05)
      << "int8 beam traversal lost too much recall vs fp32 traversal";
}

}  // namespace
}  // namespace sisg
