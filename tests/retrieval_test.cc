// Parity and regression tests of the SIMD-blocked retrieval path: the
// blocked MatchingEngine scan against a pinned scalar brute-force reference
// (both similarity modes, dims 1..256), the batched multi-query serving
// APIs, and the IVF clamping/validation behavior. The CMake suite runs this
// binary twice: once with the default dispatch and once pinned to
// SISG_SIMD=scalar, where every comparison must be bit-exact.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "common/top_k.h"
#include "core/hnsw_index.h"
#include "core/ivf_index.h"
#include "core/matching_engine.h"

namespace sisg {
namespace {

// Dims straddling the 8-lane and 4-row tile boundaries of the AVX2 kernels.
const uint32_t kParityDims[] = {1, 3, 7, 8, 9, 16, 31, 64, 100, 128, 256};

std::vector<float> RandomMatrix(Rng& rng, uint32_t rows, uint32_t dim,
                                const std::set<uint32_t>& zero_rows) {
  std::vector<float> m(static_cast<size_t>(rows) * dim);
  for (auto& x : m) x = rng.UniformFloat() * 2.0f - 1.0f;
  for (uint32_t r : zero_rows) {
    for (uint32_t d = 0; d < dim; ++d) m[static_cast<size_t>(r) * dim + d] = 0.0f;
  }
  return m;
}

/// The pre-change retrieval loop, pinned: per-candidate scalar dot in
/// declaration order, one TopKSelector push per trained candidate.
std::vector<ScoredId> BruteForceRef(const MatchingEngine& engine,
                                    const float* query, uint32_t k,
                                    uint32_t exclude) {
  TopKSelector sel(k);
  const std::vector<float>& cand = engine.candidate_matrix();
  const uint32_t dim = engine.dim();
  for (uint32_t c = 0; c < engine.num_items(); ++c) {
    if (c == exclude || !engine.HasItem(c)) continue;
    const float* row = cand.data() + static_cast<size_t>(c) * dim;
    float acc = 0.0f;
    for (uint32_t d = 0; d < dim; ++d) acc += query[d] * row[d];
    sel.Push(acc, c);
  }
  return sel.Take();
}

/// Exact under scalar dispatch; under a vector dispatch the ids may permute
/// only among candidates whose reference scores agree to float-reassociation
/// error, and every returned score must match that id's reference score.
void ExpectResultsMatch(const MatchingEngine& engine,
                        const std::vector<ScoredId>& blocked,
                        const std::vector<ScoredId>& ref, const float* query,
                        const char* what) {
  ASSERT_EQ(blocked.size(), ref.size()) << what;
  if (GetSimdOps().level == SimdLevel::kScalar) {
    for (size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(blocked[i].id, ref[i].id) << what << " rank " << i;
      EXPECT_EQ(blocked[i].score, ref[i].score) << what << " rank " << i;
    }
    return;
  }
  const std::vector<float>& cand = engine.candidate_matrix();
  const uint32_t dim = engine.dim();
  constexpr float kTol = 2e-5f;
  for (size_t i = 0; i < ref.size(); ++i) {
    // Rank-wise scores agree even if near-ties swapped ids.
    EXPECT_NEAR(blocked[i].score, ref[i].score, kTol) << what << " rank " << i;
    // Each returned score is the true (scalar) score of its id.
    const float* row = cand.data() + static_cast<size_t>(blocked[i].id) * dim;
    float acc = 0.0f;
    for (uint32_t d = 0; d < dim; ++d) acc += query[d] * row[d];
    EXPECT_NEAR(blocked[i].score, acc, kTol) << what << " id " << blocked[i].id;
  }
}

// --------------------------- blocked engine scan ---------------------------

class EngineParity : public ::testing::TestWithParam<SimilarityMode> {};

TEST_P(EngineParity, BlockedQueryMatchesScalarReferenceAcrossDims) {
  const SimilarityMode mode = GetParam();
  Rng rng(101);
  const uint32_t n = 220, k = 10;
  for (uint32_t dim : kParityDims) {
    // A few untrained (zero) rows exercise the compaction path.
    const std::set<uint32_t> zeros = {0, 5, n - 1};
    auto in = RandomMatrix(rng, n, dim, zeros);
    auto out = RandomMatrix(rng, n, dim, zeros);
    MatchingEngine engine;
    ASSERT_TRUE(engine.Build(in, out, n, dim, mode).ok()) << "dim=" << dim;
    for (uint32_t item : {1u, 7u, 100u}) {
      const auto blocked = engine.Query(item, k);
      const auto ref = BruteForceRef(engine, engine.QueryRow(item), k, item);
      ExpectResultsMatch(engine, blocked, ref, engine.QueryRow(item), "Query");
      // The query item itself must never be retrieved.
      for (const auto& r : blocked) EXPECT_NE(r.id, item) << "dim=" << dim;
    }
    // Untrained items return nothing.
    EXPECT_TRUE(engine.Query(0, k).empty()) << "dim=" << dim;
    EXPECT_TRUE(engine.Query(n + 3, k).empty()) << "dim=" << dim;
  }
}

TEST_P(EngineParity, BlockedQueryVectorMatchesScalarReference) {
  const SimilarityMode mode = GetParam();
  Rng rng(102);
  const uint32_t n = 150, k = 7;
  for (uint32_t dim : {1u, 9u, 100u, 128u}) {
    auto in = RandomMatrix(rng, n, dim, {2});
    auto out = RandomMatrix(rng, n, dim, {2});
    MatchingEngine engine;
    ASSERT_TRUE(engine.Build(in, out, n, dim, mode).ok());
    std::vector<float> q(dim);
    for (auto& x : q) x = rng.UniformFloat() * 2.0f - 1.0f;
    // QueryVector normalizes in cosine mode; reproduce that for the ref.
    std::vector<float> prepared = q;
    if (mode == SimilarityMode::kCosineInput) {
      float norm = 0.0f;
      for (float x : prepared) norm += x * x;
      norm = std::sqrt(norm);
      // Reciprocal-multiply, matching QueryVector's Scale() bit-for-bit.
      const float inv = 1.0f / norm;
      for (auto& x : prepared) x *= inv;
    }
    const auto blocked = engine.QueryVector(q.data(), k);
    const auto ref = BruteForceRef(engine, prepared.data(), k, UINT32_MAX);
    ExpectResultsMatch(engine, blocked, ref, prepared.data(), "QueryVector");
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, EngineParity,
                         ::testing::Values(SimilarityMode::kCosineInput,
                                           SimilarityMode::kDirectionalInOut));

TEST(EngineParityTest, AllNegativeScoresStillReturnK) {
  // Regression companion to the TopKSelector::Threshold fix: an anti-aligned
  // corpus scores every candidate negative, and the blocked scan must still
  // collect k of them rather than prune everything against a 0 threshold.
  const uint32_t n = 40, dim = 8, k = 5;
  std::vector<float> in(static_cast<size_t>(n) * dim, 0.0f);
  for (uint32_t r = 0; r < n; ++r) {
    // Query row 0 is +e0; every other row is -e0 scaled.
    in[static_cast<size_t>(r) * dim] = r == 0 ? 1.0f : -(1.0f + r * 0.01f);
  }
  MatchingEngine engine;
  ASSERT_TRUE(engine.Build(in, {}, n, dim, SimilarityMode::kCosineInput).ok());
  const auto res = engine.Query(0, k);
  ASSERT_EQ(res.size(), k);
  for (const auto& r : res) EXPECT_LT(r.score, 0.0f);
}

// --------------------------- batched serving ---------------------------

TEST(QueryBatchTest, EngineBatchMatchesSerialQueries) {
  Rng rng(103);
  const uint32_t n = 300, dim = 24, k = 8;
  auto in = RandomMatrix(rng, n, dim, {11});
  MatchingEngine engine;
  ASSERT_TRUE(engine.Build(in, {}, n, dim, SimilarityMode::kCosineInput).ok());
  std::vector<uint32_t> items;
  for (uint32_t i = 0; i < n; i += 3) items.push_back(i);
  const auto serial = engine.QueryBatch(items, k, 1);
  const auto parallel = engine.QueryBatch(items, k, 4);
  ASSERT_EQ(serial.size(), items.size());
  ASSERT_EQ(parallel.size(), items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    const auto direct = engine.Query(items[i], k);
    ASSERT_EQ(serial[i].size(), direct.size());
    ASSERT_EQ(parallel[i].size(), direct.size());
    for (size_t j = 0; j < direct.size(); ++j) {
      EXPECT_EQ(serial[i][j], direct[j]);
      EXPECT_EQ(parallel[i][j], direct[j]);
    }
  }
}

TEST(QueryBatchTest, IvfBatchMatchesSerialQueries) {
  Rng rng(104);
  const uint32_t n = 500, dim = 12, k = 6;
  std::vector<float> data(static_cast<size_t>(n) * dim);
  for (auto& x : data) x = rng.UniformFloat() - 0.5f;
  IvfIndex index;
  IvfOptions opts;
  opts.kmeans.num_clusters = 8;
  opts.nprobe = 4;
  ASSERT_TRUE(index.Build(data.data(), n, dim, opts).ok());
  const uint32_t num_queries = 20;
  std::vector<uint32_t> excludes(num_queries);
  for (uint32_t i = 0; i < num_queries; ++i) excludes[i] = i;
  std::vector<std::vector<ScoredId>> serial, parallel;
  ASSERT_TRUE(index
                  .QueryBatch(data.data(), num_queries, dim, k, 1, &serial,
                              excludes.data())
                  .ok());
  ASSERT_TRUE(index
                  .QueryBatch(data.data(), num_queries, dim, k, 4, &parallel,
                              excludes.data())
                  .ok());
  for (uint32_t i = 0; i < num_queries; ++i) {
    const auto direct =
        index.Query(data.data() + static_cast<size_t>(i) * dim, k, i);
    ASSERT_EQ(serial[i].size(), direct.size());
    for (size_t j = 0; j < direct.size(); ++j) {
      EXPECT_EQ(serial[i][j], direct[j]);
      EXPECT_EQ(parallel[i][j], direct[j]);
    }
  }
}

TEST(QueryBatchTest, HnswBatchMatchesSerialQueries) {
  Rng rng(105);
  const uint32_t n = 400, dim = 16, k = 5;
  std::vector<float> data(static_cast<size_t>(n) * dim);
  for (auto& x : data) x = rng.UniformFloat() - 0.5f;
  HnswIndex index;
  ASSERT_TRUE(index.Build(data.data(), n, dim, HnswOptions{}).ok());
  const uint32_t num_queries = 15;
  std::vector<std::vector<ScoredId>> serial, parallel;
  ASSERT_TRUE(
      index.QueryBatch(data.data(), num_queries, dim, k, 1, &serial).ok());
  ASSERT_TRUE(
      index.QueryBatch(data.data(), num_queries, dim, k, 4, &parallel).ok());
  for (uint32_t i = 0; i < num_queries; ++i) {
    const auto direct =
        index.Query(data.data() + static_cast<size_t>(i) * dim, k);
    ASSERT_EQ(serial[i].size(), direct.size());
    for (size_t j = 0; j < direct.size(); ++j) {
      EXPECT_EQ(serial[i][j], direct[j]);
      EXPECT_EQ(parallel[i][j], direct[j]);
    }
  }
}

TEST(QueryBatchTest, RejectsDegenerateInputs) {
  Rng rng(106);
  const uint32_t n = 100, dim = 8;
  std::vector<float> data(static_cast<size_t>(n) * dim);
  for (auto& x : data) x = rng.UniformFloat() - 0.5f;
  IvfIndex ivf;
  IvfOptions iopts;
  iopts.kmeans.num_clusters = 4;
  ASSERT_TRUE(ivf.Build(data.data(), n, dim, iopts).ok());
  HnswIndex hnsw;
  ASSERT_TRUE(hnsw.Build(data.data(), n, dim, HnswOptions{}).ok());
  std::vector<std::vector<ScoredId>> out;

  EXPECT_EQ(ivf.QueryBatch(data.data(), 10, dim, 0, 1, &out).code(),
            StatusCode::kInvalidArgument);  // k == 0
  EXPECT_EQ(ivf.QueryBatch(data.data(), 10, dim + 1, 5, 1, &out).code(),
            StatusCode::kInvalidArgument);  // dim mismatch
  EXPECT_EQ(ivf.QueryBatch(nullptr, 10, dim, 5, 1, &out).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(hnsw.QueryBatch(data.data(), 10, dim, 0, 1, &out).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(hnsw.QueryBatch(data.data(), 10, dim - 3, 5, 1, &out).code(),
            StatusCode::kInvalidArgument);
  IvfIndex unbuilt;
  EXPECT_EQ(unbuilt.QueryBatch(data.data(), 10, dim, 5, 1, &out).code(),
            StatusCode::kFailedPrecondition);

  std::vector<ScoredId> one;
  EXPECT_EQ(ivf.QueryChecked(data.data(), dim, 0, UINT32_MAX, &one).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ivf.QueryChecked(data.data(), dim + 2, 5, UINT32_MAX, &one).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(ivf.QueryChecked(data.data(), dim, 5, UINT32_MAX, &one).ok());
  EXPECT_EQ(one.size(), 5u);
}

// --------------------------- IVF clamping & recall ---------------------------

TEST(IvfClampTest, NprobeClampedToNonEmptyLists) {
  Rng rng(107);
  const uint32_t n = 60, dim = 6;
  std::vector<float> data(static_cast<size_t>(n) * dim);
  for (auto& x : data) x = rng.UniformFloat() - 0.5f;
  IvfIndex index;
  IvfOptions opts;
  opts.kmeans.num_clusters = 8;
  opts.nprobe = 1000;  // far more than there are lists
  ASSERT_TRUE(index.Build(data.data(), n, dim, opts).ok());
  EXPECT_LE(index.effective_nprobe(), 8u);
  EXPECT_GE(index.effective_nprobe(), 1u);
  // Probing "everything" is now exact: matches brute force.
  TopKSelector exact(5);
  for (uint32_t c = 1; c < n; ++c) {
    const float* row = data.data() + static_cast<size_t>(c) * dim;
    float acc = 0.0f;
    for (uint32_t d = 0; d < dim; ++d) acc += data[d] * row[d];
    exact.Push(acc, c);
  }
  const auto truth = exact.Take();
  const auto res = index.Query(data.data(), 5, 0);
  ASSERT_EQ(res.size(), truth.size());
  for (size_t i = 0; i < truth.size(); ++i) EXPECT_EQ(res[i].id, truth[i].id);
}

TEST(IvfRecallRegression, Recall10AtLeastPreChangeImplementation) {
  // Fixed-seed recall@10 of the contiguous-list implementation. The
  // pre-change per-vector implementation measured 0.800 on this exact
  // setup (seed 7, n=2000, dim=16, 16 clusters, nprobe=4); the blocked
  // rewrite probes the same lists, so recall must not drop below it.
  Rng rng(7);
  const uint32_t n = 2000, dim = 16, k = 10;
  std::vector<float> data(static_cast<size_t>(n) * dim);
  for (auto& x : data) x = rng.UniformFloat() - 0.5f;
  IvfIndex index;
  IvfOptions opts;
  opts.kmeans.num_clusters = 16;
  opts.nprobe = 4;
  ASSERT_TRUE(index.Build(data.data(), n, dim, opts).ok());
  double recall = 0.0;
  const uint32_t queries = 50;
  for (uint32_t q = 0; q < queries; ++q) {
    const float* qv = data.data() + static_cast<size_t>(q) * dim;
    TopKSelector exact(k);
    for (uint32_t c = 0; c < n; ++c) {
      if (c == q) continue;
      const float* row = data.data() + static_cast<size_t>(c) * dim;
      float acc = 0.0f;
      for (uint32_t d = 0; d < dim; ++d) acc += qv[d] * row[d];
      exact.Push(acc, c);
    }
    const auto truth = exact.Take();
    const auto approx = index.Query(qv, k, q);
    int common = 0;
    for (const auto& a : truth) {
      for (const auto& b : approx) common += a.id == b.id;
    }
    recall += static_cast<double>(common) / k;
  }
  recall /= queries;
  // Tiny slack: the recall average itself accumulates in floating point.
  EXPECT_GE(recall, 0.800 - 1e-9)
      << "recall@10 dropped below the pre-change baseline";
}

}  // namespace
}  // namespace sisg
