// Hot-swap suite: the RCU model registry must retire old snapshots only
// after the last in-flight reader drops them, the reloader must publish
// ONLY validated artifacts (corrupt / truncated / missing deploys roll back
// with the old model serving bit-identically), and the full server must
// survive a reload storm under concurrent load — versions monotone per
// connection, every answer bit-identical to the offline engine for the
// version that answered it. Plus the typed DEADLINE shed, idle eviction
// (slow-loris), the HEALTH frame, and a seeded chaos-worker pass.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/net_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/matching_engine.h"
#include "obs/metrics.h"
#include "serve/chaos.h"
#include "serve/client.h"
#include "serve/model_registry.h"
#include "serve/reloader.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "sgns/checkpoint.h"
#include "sgns/embedding_model.h"

namespace sisg {
namespace {

/// Same construction PublishSynthArena uses: seed -> Gaussian rows ->
/// cosine engine. The offline reference for any published version.
MatchingEngine BuildSynthEngine(uint32_t items, uint32_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> in(static_cast<size_t>(items) * dim);
  for (float& v : in) v = static_cast<float>(rng.Gaussian());
  MatchingEngine engine;
  EXPECT_TRUE(
      engine.Build(std::move(in), {}, items, dim, SimilarityMode::kCosineInput)
          .ok());
  return engine;
}

bool BitIdentical(const std::vector<ScoredId>& a,
                  const std::vector<ScoredId>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id) return false;
    uint32_t abits, bbits;
    std::memcpy(&abits, &a[i].score, 4);
    std::memcpy(&bbits, &b[i].score, 4);
    if (abits != bbits) return false;
  }
  return true;
}

std::string MakeTempDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

uint64_t CounterVal(const obs::MetricsSnapshot& s, const std::string& name) {
  auto it = s.counters.find(name);
  return it == s.counters.end() ? 0 : it->second;
}

double GaugeVal(const obs::MetricsSnapshot& s, const std::string& name) {
  auto it = s.gauges.find(name);
  return it == s.gauges.end() ? 0.0 : it->second;
}

// --- Registry: RCU semantics. ---

TEST(ModelRegistryTest, VersionsAreMonotoneAndOldSnapshotsStayAlive) {
  serve::ModelRegistry registry;
  EXPECT_EQ(registry.Acquire(), nullptr);
  EXPECT_EQ(registry.version(), 0u);

  MatchingEngine borrowed = BuildSynthEngine(50, 8, 1);
  EXPECT_EQ(registry.PublishBorrowed(&borrowed, "startup"), 1u);
  const serve::SnapshotPtr v1 = registry.Acquire();
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(v1->version(), 1u);
  EXPECT_EQ(v1->source(), "startup");
  const auto v1_answer = v1->engine().Query(3, 5);

  auto owned = std::make_unique<MatchingEngine>(BuildSynthEngine(60, 8, 2));
  EXPECT_EQ(registry.PublishOwned(std::move(owned), "reload"), 2u);
  EXPECT_EQ(registry.version(), 2u);
  const serve::SnapshotPtr v2 = registry.Acquire();
  EXPECT_EQ(v2->version(), 2u);
  EXPECT_EQ(v2->engine().num_items(), 60u);

  // The replaced snapshot is still fully serviceable for whoever holds it:
  // an in-flight batch that pinned v1 finishes on v1, bit for bit.
  EXPECT_EQ(v1->engine().num_items(), 50u);
  EXPECT_TRUE(BitIdentical(v1->engine().Query(3, 5), v1_answer));
}

// --- Validation gate. ---

TEST(ValidateServingEngineTest, AcceptsHealthyRejectsEmpty) {
  const MatchingEngine good = BuildSynthEngine(100, 8, 3);
  EXPECT_TRUE(serve::ValidateServingEngine(good, 8, 10).ok());

  const MatchingEngine empty;
  const Status st = serve::ValidateServingEngine(empty, 8, 10);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

// --- Reloader: pickup, rollback, idempotent failure handling. ---

class ReloaderFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = MakeTempDir("reload_" +
                       std::string(::testing::UnitTest::GetInstance()
                                       ->current_test_info()
                                       ->name()));
    ropts_.watch_dir = dir_;
    ropts_.poll_interval_ms = 10;
  }

  /// LATEST -> token, bypassing PublishSynthArena (for corrupt deploys).
  void WriteLatest(const std::string& token) {
    const std::string path = dir_ + "/LATEST";
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fprintf(f, "%s\n", token.c_str());
    std::fclose(f);
  }

  std::string dir_;
  serve::ReloaderOptions ropts_;
  serve::ModelRegistry registry_;
};

TEST_F(ReloaderFixture, AbsentLatestIsANoop) {
  serve::ModelReloader reloader(&registry_, ropts_);
  EXPECT_TRUE(reloader.PollOnce().ok());
  EXPECT_EQ(registry_.version(), 0u);
  EXPECT_EQ(reloader.failed_reloads(), 0u);
}

TEST_F(ReloaderFixture, StartRequiresAWatchDir) {
  serve::ReloaderOptions empty;
  serve::ModelReloader reloader(&registry_, empty);
  EXPECT_EQ(reloader.Start().code(), StatusCode::kInvalidArgument);
}

TEST_F(ReloaderFixture, PicksUpArenaVersionsInOrder) {
  ASSERT_TRUE(serve::PublishSynthArena(dir_, "a", 80, 8, 11, false).ok());
  serve::ModelReloader reloader(&registry_, ropts_);
  ASSERT_TRUE(reloader.PollOnce().ok());
  EXPECT_EQ(registry_.version(), 1u);
  EXPECT_EQ(reloader.ok_reloads(), 1u);

  // Served answers are bit-identical to the offline engine built from the
  // same seed — the arena roundtrip loses nothing.
  const MatchingEngine offline_a = BuildSynthEngine(80, 8, 11);
  const serve::SnapshotPtr v1 = registry_.Acquire();
  EXPECT_TRUE(
      BitIdentical(v1->engine().Query(7, 10), offline_a.Query(7, 10)));

  // Same token again: nothing to do, no spurious re-publish.
  ASSERT_TRUE(reloader.PollOnce().ok());
  EXPECT_EQ(registry_.version(), 1u);

  ASSERT_TRUE(serve::PublishSynthArena(dir_, "b", 90, 8, 12, false).ok());
  ASSERT_TRUE(reloader.PollOnce().ok());
  EXPECT_EQ(registry_.version(), 2u);
  const MatchingEngine offline_b = BuildSynthEngine(90, 8, 12);
  const serve::SnapshotPtr v2 = registry_.Acquire();
  EXPECT_EQ(v2->engine().num_items(), 90u);
  EXPECT_TRUE(
      BitIdentical(v2->engine().Query(7, 10), offline_b.Query(7, 10)));
}

TEST_F(ReloaderFixture, CorruptArenaRollsBackAndIsNotRetried) {
  obs::EnableMetrics(true);
  ASSERT_TRUE(serve::PublishSynthArena(dir_, "good", 80, 8, 21, false).ok());
  serve::ModelReloader reloader(&registry_, ropts_);
  ASSERT_TRUE(reloader.PollOnce().ok());
  ASSERT_EQ(registry_.version(), 1u);
  const auto before_answer = registry_.Acquire()->engine().Query(5, 10);
  const auto before = obs::MetricsRegistry::Global().Snapshot();

  // Garbage bytes behind an honest pointer: the load fails, the registry
  // is untouched, the old model keeps answering bit-identically.
  {
    std::FILE* f = std::fopen((dir_ + "/bad.arena").c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "definitely not an arena artifact";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  WriteLatest("bad");
  EXPECT_FALSE(reloader.PollOnce().ok());
  EXPECT_EQ(reloader.failed_reloads(), 1u);
  EXPECT_EQ(registry_.version(), 1u);
  EXPECT_TRUE(BitIdentical(registry_.Acquire()->engine().Query(5, 10),
                           before_answer));
  const auto after = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(CounterVal(after, "serve.reload_failed") -
                CounterVal(before, "serve.reload_failed"),
            1u);

  // The same bad token is attempted once, not every poll tick.
  EXPECT_TRUE(reloader.PollOnce().ok());
  EXPECT_EQ(reloader.failed_reloads(), 1u);

  // A truncated copy of a GOOD artifact must also be rejected (the loader's
  // integrity checks catch the short read), same rollback contract.
  {
    std::FILE* in = std::fopen((dir_ + "/good.arena").c_str(), "rb");
    ASSERT_NE(in, nullptr);
    std::fseek(in, 0, SEEK_END);
    const long size = std::ftell(in);
    std::fseek(in, 0, SEEK_SET);
    std::vector<char> bytes(static_cast<size_t>(size));
    ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), in), bytes.size());
    std::fclose(in);
    std::FILE* out = std::fopen((dir_ + "/trunc.arena").c_str(), "wb");
    ASSERT_NE(out, nullptr);
    std::fwrite(bytes.data(), 1, bytes.size() / 2, out);
    std::fclose(out);
  }
  WriteLatest("trunc");
  EXPECT_FALSE(reloader.PollOnce().ok());
  EXPECT_EQ(reloader.failed_reloads(), 2u);
  EXPECT_EQ(registry_.version(), 1u);
  EXPECT_TRUE(BitIdentical(registry_.Acquire()->engine().Query(5, 10),
                           before_answer));
}

TEST_F(ReloaderFixture, MissingArtifactRollsBack) {
  ASSERT_TRUE(serve::PublishSynthArena(dir_, "v1", 60, 8, 31, false).ok());
  serve::ModelReloader reloader(&registry_, ropts_);
  ASSERT_TRUE(reloader.PollOnce().ok());
  WriteLatest("ghost");
  const Status st = reloader.PollOnce();
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(reloader.failed_reloads(), 1u);
  EXPECT_EQ(registry_.version(), 1u);
}

TEST_F(ReloaderFixture, MissingInt8ArtifactRollsBackWhenInt8Required) {
  // want_int8 makes the quant arena part of the deploy: a version shipped
  // without it must NOT silently swap the int8 model for an fp32 one.
  ASSERT_TRUE(serve::PublishSynthArena(dir_, "q1", 60, 8, 41, true).ok());
  ropts_.want_int8 = true;
  serve::ModelReloader reloader(&registry_, ropts_);
  ASSERT_TRUE(reloader.PollOnce().ok());
  EXPECT_EQ(registry_.version(), 1u);

  ASSERT_TRUE(
      serve::PublishSynthArena(dir_, "q2", 60, 8, 42, /*with_int8=*/false)
          .ok());
  EXPECT_FALSE(reloader.PollOnce().ok());
  EXPECT_EQ(reloader.failed_reloads(), 1u);
  EXPECT_EQ(registry_.version(), 1u);
}

TEST_F(ReloaderFixture, PicksUpCheckpointerStream) {
  // The PR-3 trainer publication path: Checkpointer writes ckpt-<seq>.emb
  // and advances LATEST; the reloader turns that into a cosine engine over
  // the input rows.
  auto ckpt = Checkpointer::Create({dir_, /*keep=*/2});
  ASSERT_TRUE(ckpt.ok()) << ckpt.status().ToString();
  EmbeddingModel model;
  ASSERT_TRUE(model.Init(70, 16, /*seed=*/55).ok());
  ASSERT_TRUE(ckpt->Save(model, TrainProgress{}).ok());

  serve::ModelReloader reloader(&registry_, ropts_);
  ASSERT_TRUE(reloader.PollOnce().ok());
  ASSERT_EQ(registry_.version(), 1u);
  const serve::SnapshotPtr snap = registry_.Acquire();
  EXPECT_EQ(snap->engine().num_items(), 70u);
  EXPECT_EQ(snap->engine().dim(), 16u);

  // Offline reference: same dense rows, same Build.
  std::vector<float> in(static_cast<size_t>(70) * 16);
  for (uint32_t r = 0; r < 70; ++r) {
    std::copy(model.Input(r), model.Input(r) + 16,
              in.begin() + static_cast<size_t>(r) * 16);
  }
  MatchingEngine offline;
  ASSERT_TRUE(
      offline.Build(std::move(in), {}, 70, 16, SimilarityMode::kCosineInput)
          .ok());
  EXPECT_TRUE(
      BitIdentical(snap->engine().Query(9, 10), offline.Query(9, 10)));
}

// --- The acceptance bar: reload storm under concurrent load. ---

TEST(HotSwapUnderLoadTest, TenSwapsEightConnectionsZeroErrorsBitIdentical) {
  obs::EnableMetrics(true);
  const std::string dir = MakeTempDir("hotswap");
  constexpr uint32_t kItems = 200;
  constexpr uint32_t kDim = 8;
  constexpr uint32_t kK = 5;
  constexpr uint64_t kSeedBase = 5000;
  constexpr uint64_t kVersions = 11;  // initial + 10 hot swaps
  constexpr uint32_t kConns = 8;

  // Offline references, one per version the storm will publish. Version v
  // is token "v" with seed kSeedBase + v (the publisher waits for each
  // swap to land, so registry versions track tokens exactly).
  std::vector<MatchingEngine> offline;
  offline.reserve(kVersions + 1);
  offline.emplace_back();  // index 0 unused
  for (uint64_t v = 1; v <= kVersions; ++v) {
    offline.push_back(BuildSynthEngine(kItems, kDim, kSeedBase + v));
  }

  serve::ModelRegistry registry;
  serve::ReloaderOptions ropts;
  ropts.watch_dir = dir;
  ropts.poll_interval_ms = 5;
  serve::ModelReloader reloader(&registry, ropts);
  ASSERT_TRUE(
      serve::PublishSynthArena(dir, "1", kItems, kDim, kSeedBase + 1, false)
          .ok());
  ASSERT_TRUE(reloader.PollOnce().ok());
  ASSERT_EQ(registry.version(), 1u);

  serve::ServerOptions opts;
  opts.io_threads = 1;
  opts.batch.max_wait_us = 100;
  serve::ServeServer server(&registry, opts);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(reloader.Start().ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> transport_errors{0};
  std::atomic<uint64_t> status_errors{0};
  std::atomic<uint64_t> version_regressions{0};
  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kConns);
  for (uint32_t c = 0; c < kConns; ++c) {
    clients.emplace_back([&, c] {
      auto client = serve::ServeClient::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        transport_errors++;
        return;
      }
      Rng rng(900 + c);
      uint64_t last_version = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto item = static_cast<uint32_t>(rng.UniformU64(kItems));
        serve::QueryResponse resp;
        if (!client->Query(item, kK, &resp).ok()) {
          transport_errors++;
          return;
        }
        if (resp.status == serve::WireStatus::kBusy) continue;
        if (resp.status != serve::WireStatus::kOk) {
          status_errors++;  // anything but OK/BUSY is a failure here
          continue;
        }
        completed++;
        const uint64_t v = resp.model_version;
        // Versions a single connection observes never go backwards.
        if (v < last_version || v == 0 || v > kVersions) {
          version_regressions++;
          continue;
        }
        last_version = v;
        if (!BitIdentical(resp.results, offline[v].Query(item, kK))) {
          mismatches++;
        }
      }
      client->Close();
    });
  }

  // The storm: publish versions 2..kVersions, each one waiting for the
  // swap to land before shipping the next (so version <-> seed stays a
  // bijection for the bit-identity check).
  for (uint64_t v = 2; v <= kVersions; ++v) {
    ASSERT_TRUE(serve::PublishSynthArena(dir, std::to_string(v), kItems, kDim,
                                         kSeedBase + v, false)
                    .ok());
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (registry.version() < v &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_EQ(registry.version(), v) << "swap " << v << " never landed";
  }
  // Let traffic run a beat on the final version before stopping.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true);
  for (auto& t : clients) t.join();
  reloader.Stop();
  server.Shutdown();

  EXPECT_EQ(transport_errors.load(), 0u);
  EXPECT_EQ(status_errors.load(), 0u);
  EXPECT_EQ(version_regressions.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GT(completed.load(), 0u);
  EXPECT_GE(reloader.ok_reloads(), kVersions);
  EXPECT_EQ(reloader.failed_reloads(), 0u);
  const auto snap = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(GaugeVal(snap, "serve.model_version"),
            static_cast<double>(kVersions));
}

// --- Typed DEADLINE shed. ---

TEST(ServeDeadlineTest, ExpiredQueuedRequestsAreShedTyped) {
  obs::EnableMetrics(true);
  MatchingEngine engine = BuildSynthEngine(100, 8, 61);
  serve::ServerOptions opts;
  opts.io_threads = 1;
  opts.batch.max_batch = 64;
  opts.batch.max_wait_us = 150000;  // hold the first batch open 150ms...
  opts.batch.deadline_us = 1000;    // ...far past the 1ms request deadline
  serve::ServeServer server(&engine, opts);
  ASSERT_TRUE(server.Start().ok());
  const auto before = obs::MetricsRegistry::Global().Snapshot();

  auto client = serve::ServeClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  constexpr uint64_t kSent = 4;
  for (uint64_t id = 1; id <= kSent; ++id) {
    ASSERT_TRUE(client->SendQuery(id, static_cast<uint32_t>(id), 5).ok());
  }
  uint32_t shed = 0;
  for (uint64_t i = 0; i < kSent; ++i) {
    serve::QueryResponse resp;
    ASSERT_TRUE(client->ReadResponse(&resp).ok());
    if (resp.status == serve::WireStatus::kDeadlineExceeded) {
      ++shed;
      EXPECT_TRUE(resp.results.empty());
      EXPECT_GE(resp.model_version, 1u);  // the shed still names the model
    }
  }
  EXPECT_GE(shed, 1u);

  const auto after = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_GE(CounterVal(after, "serve.deadline_exceeded") -
                CounterVal(before, "serve.deadline_exceeded"),
            uint64_t{shed});
  client->Close();
  server.Shutdown();
}

// --- Idle eviction (slow-loris). ---

TEST(ServeIdleTest, SilentAndStalledConnectionsAreEvicted) {
  obs::EnableMetrics(true);
  MatchingEngine engine = BuildSynthEngine(50, 8, 71);
  serve::ServerOptions opts;
  opts.io_threads = 1;
  opts.idle_timeout_ms = 100;
  serve::ServeServer server(&engine, opts);
  ASSERT_TRUE(server.Start().ok());
  const auto before = obs::MetricsRegistry::Global().Snapshot();

  auto wait_for_eof = [](int fd) {
    ASSERT_TRUE(SetSocketTimeouts(fd, 5000, 5000).ok());
    char buf[16];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    EXPECT_EQ(n, 0) << "expected server-side eviction (clean EOF)";
    ::close(fd);
  };

  // A connection that never says anything...
  int silent_fd = -1;
  ASSERT_TRUE(ConnectTcp("127.0.0.1", server.port(), &silent_fd, 2000).ok());
  // ...and a slow-loris: a valid frame started but never finished. The
  // trickle keeps the socket non-silent, yet the unfinished frame is held
  // to the same clock and must still be evicted.
  int stalled_fd = -1;
  ASSERT_TRUE(ConnectTcp("127.0.0.1", server.port(), &stalled_fd, 2000).ok());
  serve::QueryRequest req;
  req.request_id = 1;
  req.item = 2;
  req.k = 3;
  std::string frame;
  serve::EncodeQuery(req, &frame);
  ASSERT_EQ(::send(stalled_fd, frame.data(), 4, 0), 4);

  wait_for_eof(silent_fd);
  wait_for_eof(stalled_fd);
  const auto after = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_GE(CounterVal(after, "serve.idle_evicted") -
                CounterVal(before, "serve.idle_evicted"),
            2u);

  // Eviction hygiene never touches a healthy, active connection.
  auto client = serve::ServeClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  serve::QueryResponse resp;
  ASSERT_TRUE(client->Query(1, 5, &resp).ok());
  EXPECT_EQ(resp.status, serve::WireStatus::kOk);
  client->Close();
  server.Shutdown();
}

// --- HEALTH frame. ---

TEST(ServeHealthTest, ReportsReadyVersionAndShape) {
  MatchingEngine engine = BuildSynthEngine(123, 16, 81);
  serve::ServerOptions opts;
  opts.io_threads = 1;
  serve::ServeServer server(&engine, opts);
  ASSERT_TRUE(server.Start().ok());

  auto client = serve::ServeClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  serve::HealthInfo info;
  ASSERT_TRUE(client->Health(&info).ok());
  EXPECT_TRUE(info.ready);
  EXPECT_EQ(info.num_items, 123u);
  EXPECT_EQ(info.dim, 16u);
  EXPECT_EQ(info.model_version, server.registry()->version());
  client->Close();
  server.Shutdown();
}

// --- Client-side timeout: typed, and the slow server is survivable. ---

TEST(ServeClientTimeoutTest, IoTimeoutIsTypedDeadlineExceeded) {
  MatchingEngine engine = BuildSynthEngine(80, 8, 91);
  serve::ServerOptions opts;
  opts.io_threads = 1;
  opts.batch.max_batch = 64;
  opts.batch.max_wait_us = 2000000;  // hold replies 2s: longer than the
                                     // client is willing to wait
  serve::ServeServer server(&engine, opts);
  ASSERT_TRUE(server.Start().ok());

  serve::ClientOptions copt;
  copt.connect_timeout_ms = 1000;
  copt.io_timeout_ms = 200;
  auto client = serve::ServeClient::Connect("127.0.0.1", server.port(), copt);
  ASSERT_TRUE(client.ok());
  serve::QueryResponse resp;
  const Status st = client->Query(1, 5, &resp);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st.ToString();
  client->Close();
  server.Shutdown();
}

// --- Chaos worker: attacks never take the server down. ---

TEST(ServeChaosTest, SeededAttackSweepLeavesServerHealthy) {
  MatchingEngine engine = BuildSynthEngine(150, 8, 101);
  serve::ServerOptions opts;
  opts.io_threads = 1;
  opts.idle_timeout_ms = 100;  // slow-loris attacks get evicted, not parked
  serve::ServeServer server(&engine, opts);
  ASSERT_TRUE(server.Start().ok());

  auto plan = serve::ChaosPlan::Parse("all,seed=424242");
  ASSERT_TRUE(plan.ok());
  serve::ChaosStats stats;
  const uint64_t deadline = MonotonicNanos() + 1'500'000'000ull;
  serve::RunChaosWorker("127.0.0.1", server.port(), *plan, 150, deadline,
                        /*worker_id=*/1, &stats);
  EXPECT_GT(stats.attacks.load(), 0u);
  EXPECT_EQ(stats.probes_failed.load(), 0u)
      << "honest probes failed while under attack";

  auto client = serve::ServeClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  serve::HealthInfo info;
  ASSERT_TRUE(client->Health(&info).ok());
  EXPECT_TRUE(info.ready);
  client->Close();
  server.Shutdown();
}

}  // namespace
}  // namespace sisg
