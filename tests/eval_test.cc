#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/math_util.h"
#include "datagen/dataset.h"
#include "eval/ctr_simulator.h"
#include "eval/hitrate.h"
#include "eval/pca.h"
#include "eval/table_printer.h"
#include "eval/tsne.h"

namespace sisg {
namespace {

// --------------------------- hit rate ---------------------------

Session MakeSession(std::vector<uint32_t> items) {
  Session s;
  s.items = std::move(items);
  return s;
}

TEST(HitRateTest, ExactComputation) {
  // Retrieval always returns [1, 2, 3].
  RetrievalFn fn = [](uint32_t, uint32_t k) {
    std::vector<ScoredId> out = {{3.0f, 1}, {2.0f, 2}, {1.0f, 3}};
    out.resize(std::min<size_t>(k, out.size()));
    return out;
  };
  std::vector<Session> test = {
      MakeSession({9, 9, 1}),  // truth 1 at rank 0
      MakeSession({9, 9, 3}),  // truth 3 at rank 2
      MakeSession({9, 9, 7}),  // miss
  };
  const auto res = EvaluateHitRate(test, fn, {1, 3});
  EXPECT_EQ(res.num_queries, 3u);
  EXPECT_EQ(res.num_covered, 3u);
  EXPECT_NEAR(res.hit_rate[0], 1.0 / 3, 1e-9);
  EXPECT_NEAR(res.hit_rate[1], 2.0 / 3, 1e-9);
  EXPECT_NEAR(res.mrr, (1.0 + 1.0 / 3) / 3, 1e-9);
}

TEST(HitRateTest, NdcgDiscountsByRank) {
  RetrievalFn fn = [](uint32_t, uint32_t k) {
    std::vector<ScoredId> out = {{3.0f, 1}, {2.0f, 2}, {1.0f, 3}};
    out.resize(std::min<size_t>(k, out.size()));
    return out;
  };
  std::vector<Session> test = {
      MakeSession({9, 9, 1}),  // rank 0 -> gain 1/log2(2) = 1
      MakeSession({9, 9, 3}),  // rank 2 -> gain 1/log2(4) = 0.5
  };
  const auto res = EvaluateHitRate(test, fn, {3});
  ASSERT_EQ(res.ndcg.size(), 1u);
  EXPECT_NEAR(res.ndcg[0], (1.0 + 0.5) / 2, 1e-9);
  // NDCG is bounded by the hit rate.
  EXPECT_LE(res.ndcg[0], res.hit_rate[0] + 1e-12);
}

TEST(HitRateTest, EmptyRetrievalCountsAsMiss) {
  RetrievalFn fn = [](uint32_t, uint32_t) { return std::vector<ScoredId>{}; };
  std::vector<Session> test = {MakeSession({1, 2, 3})};
  const auto res = EvaluateHitRate(test, fn, {10});
  EXPECT_EQ(res.num_queries, 1u);
  EXPECT_EQ(res.num_covered, 0u);
  EXPECT_DOUBLE_EQ(res.hit_rate[0], 0.0);
}

TEST(HitRateTest, ShortSessionsSkipped) {
  RetrievalFn fn = [](uint32_t, uint32_t) {
    return std::vector<ScoredId>{{1.0f, 0}};
  };
  std::vector<Session> test = {MakeSession({5})};
  const auto res = EvaluateHitRate(test, fn, {1});
  EXPECT_EQ(res.num_queries, 0u);
}

TEST(HitRateTest, UsesSecondToLastAsQuery) {
  RetrievalFn fn = [](uint32_t item, uint32_t) {
    // Only query 42 retrieves the truth 7.
    if (item == 42) return std::vector<ScoredId>{{1.0f, 7}};
    return std::vector<ScoredId>{{1.0f, 999}};
  };
  const auto res = EvaluateHitRate({MakeSession({1, 42, 7})}, fn, {1});
  EXPECT_DOUBLE_EQ(res.hit_rate[0], 1.0);
}

// --------------------------- CTR simulator ---------------------------

class CtrFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    DatasetSpec spec;
    spec.catalog.num_items = 500;
    spec.catalog.num_leaf_categories = 10;
    spec.users.num_user_types = 60;
    spec.num_train_sessions = 1500;
    spec.num_test_sessions = 100;
    auto ds = SyntheticDataset::Generate(spec);
    ASSERT_TRUE(ds.ok());
    dataset_ = std::make_unique<SyntheticDataset>(std::move(ds).value());
  }
  std::unique_ptr<SyntheticDataset> dataset_;
};

TEST_F(CtrFixture, GroundTruthOracleBeatsRandomRecommender) {
  CtrSimOptions opts;
  opts.num_days = 3;
  opts.impressions_per_day = 3000;

  // Oracle: recommend the ground-truth successors.
  const SessionGenerator& gen = dataset_->generator();
  RetrievalFn oracle = [&](uint32_t item, uint32_t k) {
    std::vector<ScoredId> out;
    const auto& succ = gen.Successors(item);
    for (size_t i = 0; i < succ.size() && i < k; ++i) {
      out.push_back({1.0f - 0.01f * i, succ[i]});
    }
    return out;
  };
  Rng rng(5);
  const uint32_t n = dataset_->catalog().num_items();
  RetrievalFn random_rec = [&](uint32_t, uint32_t k) {
    std::vector<ScoredId> out;
    for (uint32_t i = 0; i < k; ++i) {
      out.push_back({1.0f, static_cast<uint32_t>(rng.UniformU64(n))});
    }
    return out;
  };
  const CtrSeries oracle_ctr = SimulateCtr(*dataset_, oracle, opts);
  const CtrSeries random_ctr = SimulateCtr(*dataset_, random_rec, opts);
  ASSERT_EQ(oracle_ctr.daily_ctr.size(), 3u);
  EXPECT_GT(oracle_ctr.mean_ctr, 0.3);
  EXPECT_LT(random_ctr.mean_ctr, 0.05);
  EXPECT_GT(oracle_ctr.mean_ctr, 3 * random_ctr.mean_ctr);
}

TEST_F(CtrFixture, PairedArmsSeeSameImpressions) {
  CtrSimOptions opts;
  opts.num_days = 2;
  opts.impressions_per_day = 1000;
  opts.daily_noise = 0.0;
  RetrievalFn empty = [](uint32_t, uint32_t) { return std::vector<ScoredId>{}; };
  const CtrSeries a = SimulateCtr(*dataset_, empty, opts);
  const CtrSeries b = SimulateCtr(*dataset_, empty, opts);
  // Identical arms -> identical CTR series (paired simulation).
  EXPECT_EQ(a.daily_ctr, b.daily_ctr);
  EXPECT_DOUBLE_EQ(a.mean_ctr, 0.0);
}

// --------------------------- PCA ---------------------------

TEST(PcaTest, RecoversDominantDirection) {
  Rng rng(1);
  const uint32_t n = 300, d = 5;
  std::vector<double> data(n * d);
  for (uint32_t i = 0; i < n; ++i) {
    const double t = rng.Gaussian() * 10.0;  // dominant axis 0
    data[i * d + 0] = t;
    for (uint32_t j = 1; j < d; ++j) data[i * d + j] = rng.Gaussian() * 0.1;
  }
  auto proj = PcaProject(data, n, d, 1);
  ASSERT_TRUE(proj.ok());
  // Projection variance should be close to the dominant variance (100).
  std::vector<double> xs(proj->begin(), proj->end());
  const MeanVar mv = ComputeMeanVar(xs);
  EXPECT_GT(mv.var, 50.0);
}

TEST(PcaTest, ComponentsAreUncorrelated) {
  Rng rng(2);
  const uint32_t n = 200, d = 6;
  std::vector<double> data(n * d);
  for (auto& x : data) x = rng.Gaussian();
  auto proj = PcaProject(data, n, d, 2);
  ASSERT_TRUE(proj.ok());
  double c01 = 0, m0 = 0, m1 = 0;
  for (uint32_t i = 0; i < n; ++i) {
    m0 += (*proj)[i * 2];
    m1 += (*proj)[i * 2 + 1];
  }
  m0 /= n;
  m1 /= n;
  double v0 = 0, v1 = 0;
  for (uint32_t i = 0; i < n; ++i) {
    c01 += ((*proj)[i * 2] - m0) * ((*proj)[i * 2 + 1] - m1);
    v0 += std::pow((*proj)[i * 2] - m0, 2);
    v1 += std::pow((*proj)[i * 2 + 1] - m1, 2);
  }
  EXPECT_LT(std::abs(c01) / std::sqrt(v0 * v1), 0.15);
}

TEST(PcaTest, RejectsBadShapes) {
  EXPECT_FALSE(PcaProject({}, 0, 3, 1).ok());
  EXPECT_FALSE(PcaProject(std::vector<double>(6), 2, 3, 4).ok());
  EXPECT_FALSE(PcaProject(std::vector<double>(5), 2, 3, 1).ok());
}

// --------------------------- t-SNE + silhouette ---------------------------

TEST(TsneTest, SeparatesTwoGaussianBlobs) {
  Rng rng(3);
  const uint32_t n = 120, d = 10;
  std::vector<double> data(n * d);
  std::vector<int> labels(n);
  for (uint32_t i = 0; i < n; ++i) {
    labels[i] = i < n / 2 ? 0 : 1;
    const double offset = labels[i] == 0 ? -4.0 : 4.0;
    for (uint32_t j = 0; j < d; ++j) {
      data[i * d + j] = rng.Gaussian() * 0.3 + (j == 0 ? offset : 0.0);
    }
  }
  TsneOptions opts;
  opts.perplexity = 15;
  opts.iterations = 200;
  auto y = TsneEmbed(data, n, d, opts);
  ASSERT_TRUE(y.ok()) << y.status().ToString();
  ASSERT_EQ(y->size(), n * 2u);
  const double sil = SilhouetteScore(*y, n, 2, labels);
  EXPECT_GT(sil, 0.5);  // clear separation survives the embedding
}

TEST(TsneTest, RejectsBadInput) {
  EXPECT_FALSE(TsneEmbed({}, 0, 3).ok());
  EXPECT_FALSE(TsneEmbed(std::vector<double>(5), 2, 3).ok());
  TsneOptions opts;
  opts.perplexity = 1000;
  EXPECT_FALSE(TsneEmbed(std::vector<double>(30), 10, 3, opts).ok());
}

TEST(SilhouetteTest, PerfectAndMixedClusters) {
  // Two tight, well-separated clusters in 1-D.
  std::vector<double> points = {0.0, 0.1, 0.2, 10.0, 10.1, 10.2};
  std::vector<int> good = {0, 0, 0, 1, 1, 1};
  std::vector<int> bad = {0, 1, 0, 1, 0, 1};
  const double s_good = SilhouetteScore(points, 6, 1, good);
  const double s_bad = SilhouetteScore(points, 6, 1, bad);
  EXPECT_GT(s_good, 0.9);
  EXPECT_LT(s_bad, 0.0);
  // Degenerate cases.
  EXPECT_DOUBLE_EQ(SilhouetteScore(points, 6, 1, {0, 0, 0, 0, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(SilhouetteScore({}, 0, 1, {}), 0.0);
}

// --------------------------- table printer ---------------------------

TEST(TablePrinterTest, RendersAlignedTable) {
  TablePrinter t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22222"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("+-------+-------+"), std::string::npos);
}

TEST(TablePrinterTest, Formatters) {
  EXPECT_EQ(TablePrinter::Fixed(0.12345, 3), "0.123");
  EXPECT_EQ(TablePrinter::Percent(0.1801, 2), "+18.01%");
  EXPECT_EQ(TablePrinter::Percent(-0.0565, 2), "-5.65%");
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"only"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

}  // namespace
}  // namespace sisg
