// Tests of the approximate-nearest-neighbor serving layer: k-means
// quantizer and the IVF index, including recall against brute force.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>

#include "common/io_util.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "core/hnsw_index.h"
#include "core/ivf_index.h"
#include "core/kmeans.h"
#include "core/matching_engine.h"
#include "core/pipeline.h"
#include "datagen/dataset.h"

namespace sisg {
namespace {

std::vector<float> BlobData(uint32_t per_blob, uint32_t blobs, uint32_t dim,
                            uint64_t seed, std::vector<uint32_t>* labels) {
  Rng rng(seed);
  std::vector<float> data;
  data.reserve(static_cast<size_t>(per_blob) * blobs * dim);
  for (uint32_t b = 0; b < blobs; ++b) {
    std::vector<float> center(dim);
    for (auto& c : center) c = rng.UniformFloat() * 10.0f - 5.0f;
    for (uint32_t i = 0; i < per_blob; ++i) {
      for (uint32_t d = 0; d < dim; ++d) {
        data.push_back(center[d] + static_cast<float>(rng.Gaussian()) * 0.2f);
      }
      if (labels != nullptr) labels->push_back(b);
    }
  }
  return data;
}

// --------------------------- kmeans ---------------------------

TEST(KMeansTest, RejectsBadInput) {
  KMeans km;
  EXPECT_FALSE(km.Fit(nullptr, 10, 4, {}).ok());
  std::vector<float> zeros(40, 0.0f);
  EXPECT_FALSE(km.Fit(zeros.data(), 10, 4, {}).ok());
  std::vector<float> data(40, 1.0f);
  KMeansOptions bad;
  bad.num_clusters = 0;
  EXPECT_FALSE(km.Fit(data.data(), 10, 4, bad).ok());
}

TEST(KMeansTest, RecoversWellSeparatedBlobs) {
  std::vector<uint32_t> labels;
  const auto data = BlobData(50, 4, 8, 1, &labels);
  KMeans km;
  KMeansOptions opts;
  opts.num_clusters = 4;
  ASSERT_TRUE(km.Fit(data.data(), 200, 8, opts).ok());
  EXPECT_EQ(km.num_clusters(), 4u);
  // All members of one blob land in the same cluster.
  for (uint32_t b = 0; b < 4; ++b) {
    std::set<uint32_t> assigned;
    for (uint32_t i = 0; i < 200; ++i) {
      if (labels[i] == b) assigned.insert(km.Assign(data.data() + i * 8));
    }
    EXPECT_EQ(assigned.size(), 1u) << "blob " << b << " split";
  }
}

TEST(KMeansTest, ClampsClustersToLiveRows) {
  std::vector<float> data(5 * 4, 0.0f);
  for (int i = 0; i < 3; ++i) data[static_cast<size_t>(i) * 4] = i + 1.0f;
  KMeans km;
  KMeansOptions opts;
  opts.num_clusters = 10;
  ASSERT_TRUE(km.Fit(data.data(), 5, 4, opts).ok());
  EXPECT_EQ(km.num_clusters(), 3u);  // only 3 non-zero rows
}

TEST(KMeansTest, AssignTopNOrdered) {
  std::vector<uint32_t> labels;
  const auto data = BlobData(30, 5, 6, 2, &labels);
  KMeans km;
  KMeansOptions opts;
  opts.num_clusters = 5;
  ASSERT_TRUE(km.Fit(data.data(), 150, 6, opts).ok());
  const auto top = km.AssignTopN(data.data(), 5);
  ASSERT_EQ(top.size(), 5u);
  EXPECT_EQ(top[0], km.Assign(data.data()));
  std::set<uint32_t> distinct(top.begin(), top.end());
  EXPECT_EQ(distinct.size(), 5u);
}

TEST(KMeansTest, Deterministic) {
  const auto data = BlobData(40, 3, 4, 3, nullptr);
  KMeans a, b;
  KMeansOptions opts;
  opts.num_clusters = 3;
  ASSERT_TRUE(a.Fit(data.data(), 120, 4, opts).ok());
  ASSERT_TRUE(b.Fit(data.data(), 120, 4, opts).ok());
  for (uint32_t c = 0; c < 3; ++c) {
    for (uint32_t d = 0; d < 4; ++d) {
      EXPECT_EQ(a.Centroid(c)[d], b.Centroid(c)[d]);
    }
  }
}

// --------------------------- IVF ---------------------------

TEST(IvfIndexTest, RejectsBadOptions) {
  const auto data = BlobData(10, 2, 4, 4, nullptr);
  IvfIndex index;
  IvfOptions opts;
  opts.nprobe = 0;
  EXPECT_FALSE(index.Build(data.data(), 20, 4, opts).ok());
}

TEST(IvfIndexTest, ExcludesZeroRowsAndQueryItem) {
  // 5 rows of dim 2; rows 1, 3 and 4 are zero (untrained items).
  std::vector<float> data = {1, 0, 0, 0, 0.9f, 0.1f, 0, 0, 0, 0};
  IvfIndex index;
  IvfOptions opts;
  opts.kmeans.num_clusters = 2;
  ASSERT_TRUE(index.Build(data.data(), 5, 2, opts).ok());
  EXPECT_EQ(index.num_vectors(), 2u);  // zero rows dropped
  const float q[2] = {1, 0};
  const auto res = index.Query(q, 10, /*exclude=*/0);
  for (const auto& r : res) EXPECT_NE(r.id, 0u);
}

class IvfRecall : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(IvfRecall, HighRecallAgainstBruteForce) {
  const auto [num_clusters, nprobe] = GetParam();
  Rng rng(7);
  const uint32_t n = 2000, dim = 16;
  std::vector<float> data(static_cast<size_t>(n) * dim);
  for (auto& x : data) x = rng.UniformFloat() - 0.5f;

  IvfIndex index;
  IvfOptions opts;
  opts.kmeans.num_clusters = num_clusters;
  opts.nprobe = nprobe;
  ASSERT_TRUE(index.Build(data.data(), n, dim, opts).ok());

  // Brute-force reference.
  const uint32_t k = 10;
  double recall = 0.0;
  const uint32_t queries = 50;
  for (uint32_t q = 0; q < queries; ++q) {
    const float* qv = data.data() + static_cast<size_t>(q) * dim;
    TopKSelector exact(k);
    for (uint32_t c = 0; c < n; ++c) {
      if (c != q) exact.Push(Dot(qv, data.data() + static_cast<size_t>(c) * dim, dim), c);
    }
    const auto truth = exact.Take();
    const auto approx = index.Query(qv, k, q);
    int common = 0;
    for (const auto& a : truth) {
      for (const auto& b : approx) common += a.id == b.id;
    }
    recall += static_cast<double>(common) / k;
  }
  recall /= queries;
  // Recall grows with nprobe; even modest settings stay useful.
  const double floor = nprobe >= num_clusters ? 0.999 : 0.35;
  EXPECT_GT(recall, floor) << "clusters=" << num_clusters << " nprobe=" << nprobe;
}

INSTANTIATE_TEST_SUITE_P(Settings, IvfRecall,
                         ::testing::Values(std::make_tuple(16u, 4u),
                                           std::make_tuple(16u, 16u),
                                           std::make_tuple(64u, 16u)));

TEST(IvfIndexTest, FullProbeMatchesBruteForceExactly) {
  Rng rng(9);
  const uint32_t n = 300, dim = 8;
  std::vector<float> data(static_cast<size_t>(n) * dim);
  for (auto& x : data) x = rng.UniformFloat() - 0.5f;
  IvfIndex index;
  IvfOptions opts;
  opts.kmeans.num_clusters = 8;
  opts.nprobe = 8;  // scan everything
  ASSERT_TRUE(index.Build(data.data(), n, dim, opts).ok());
  const float* qv = data.data();
  TopKSelector exact(5);
  for (uint32_t c = 1; c < n; ++c) {
    exact.Push(Dot(qv, data.data() + static_cast<size_t>(c) * dim, dim), c);
  }
  const auto truth = exact.Take();
  const auto approx = index.Query(qv, 5, 0);
  ASSERT_EQ(truth.size(), approx.size());
  for (size_t i = 0; i < truth.size(); ++i) EXPECT_EQ(truth[i].id, approx[i].id);
}

// --------------------------- HNSW ---------------------------

TEST(HnswIndexTest, RejectsBadOptions) {
  const auto data = BlobData(10, 2, 4, 5, nullptr);
  HnswIndex index;
  HnswOptions opts;
  opts.M = 1;
  EXPECT_FALSE(index.Build(data.data(), 20, 4, opts).ok());
  opts = HnswOptions{};
  opts.ef_construction = 2;
  EXPECT_FALSE(index.Build(data.data(), 20, 4, opts).ok());
  EXPECT_FALSE(index.Build(nullptr, 20, 4, HnswOptions{}).ok());
  std::vector<float> zeros(80, 0.0f);
  EXPECT_FALSE(index.Build(zeros.data(), 20, 4, HnswOptions{}).ok());
}

TEST(HnswIndexTest, SingleVector) {
  std::vector<float> data = {1.0f, 0.0f};
  HnswIndex index;
  ASSERT_TRUE(index.Build(data.data(), 1, 2, HnswOptions{}).ok());
  EXPECT_EQ(index.num_vectors(), 1u);
  const float q[2] = {1.0f, 0.0f};
  const auto res = index.Query(q, 5);
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].id, 0u);
  EXPECT_TRUE(index.Query(q, 5, /*exclude=*/0).empty());
}

class HnswRecall : public ::testing::TestWithParam<uint32_t> {};

TEST_P(HnswRecall, HighRecallOnNormalizedVectors) {
  const uint32_t ef_search = GetParam();
  Rng rng(11);
  const uint32_t n = 1500, dim = 16;
  std::vector<float> data(static_cast<size_t>(n) * dim);
  for (auto& x : data) x = rng.UniformFloat() - 0.5f;
  // Normalize (the MatchingEngine serves normalized candidate rows).
  for (uint32_t r = 0; r < n; ++r) {
    float* row = data.data() + static_cast<size_t>(r) * dim;
    const float norm = L2Norm(row, dim);
    Scale(1.0f / norm, row, dim);
  }

  HnswIndex index;
  HnswOptions opts;
  opts.ef_search = ef_search;
  ASSERT_TRUE(index.Build(data.data(), n, dim, opts).ok());
  EXPECT_EQ(index.num_vectors(), n);

  const uint32_t k = 10;
  double recall = 0.0;
  const uint32_t queries = 40;
  for (uint32_t q = 0; q < queries; ++q) {
    const float* qv = data.data() + static_cast<size_t>(q) * dim;
    TopKSelector exact(k);
    for (uint32_t c = 0; c < n; ++c) {
      if (c != q) {
        exact.Push(Dot(qv, data.data() + static_cast<size_t>(c) * dim, dim), c);
      }
    }
    const auto truth = exact.Take();
    const auto approx = index.Query(qv, k, q);
    int common = 0;
    for (const auto& a : truth) {
      for (const auto& b : approx) common += a.id == b.id;
    }
    recall += static_cast<double>(common) / k;
  }
  recall /= queries;
  EXPECT_GT(recall, ef_search >= 128 ? 0.9 : 0.6) << "ef=" << ef_search;
}

INSTANTIATE_TEST_SUITE_P(EfSearch, HnswRecall, ::testing::Values(32u, 128u));

TEST(HnswIndexTest, QueryFindsOwnVectorFirst) {
  Rng rng(13);
  const uint32_t n = 500, dim = 8;
  std::vector<float> data(static_cast<size_t>(n) * dim);
  for (auto& x : data) x = rng.UniformFloat() - 0.5f;
  for (uint32_t r = 0; r < n; ++r) {
    float* row = data.data() + static_cast<size_t>(r) * dim;
    Scale(1.0f / L2Norm(row, dim), row, dim);
  }
  HnswIndex index;
  ASSERT_TRUE(index.Build(data.data(), n, dim, HnswOptions{}).ok());
  int self_first = 0;
  for (uint32_t q = 0; q < 50; ++q) {
    const auto res =
        index.Query(data.data() + static_cast<size_t>(q) * dim, 1);
    self_first += !res.empty() && res[0].id == q;
  }
  EXPECT_GT(self_first, 45);  // a normalized vector's best match is itself
}

// The per-thread EpochVisitedSet behind SearchLayer is pure implementation:
// repeating a query on the same index must return identical results (no
// stale visited state can leak across the thread-local set's reuse), and
// QueryBatch results must not depend on how queries land on pool threads.
TEST(HnswIndexTest, QueryIsDeterministicAcrossRepeatsAndThreadCounts) {
  Rng rng(17);
  const uint32_t n = 1200, dim = 12, k = 10;
  std::vector<float> data(static_cast<size_t>(n) * dim);
  for (auto& x : data) x = rng.UniformFloat() - 0.5f;
  for (uint32_t r = 0; r < n; ++r) {
    float* row = data.data() + static_cast<size_t>(r) * dim;
    Scale(1.0f / L2Norm(row, dim), row, dim);
  }
  HnswIndex index;
  ASSERT_TRUE(index.Build(data.data(), n, dim, HnswOptions{}).ok());

  // Same query repeated on one thread: bit-identical result lists. The
  // repeat exercises the reused thread-local visited set back to back.
  const uint32_t queries = 64;
  std::vector<std::vector<ScoredId>> first;
  for (uint32_t q = 0; q < queries; ++q) {
    const float* qv = data.data() + static_cast<size_t>(q) * dim;
    first.push_back(index.Query(qv, k, q));
  }
  for (uint32_t q = 0; q < queries; ++q) {
    const float* qv = data.data() + static_cast<size_t>(q) * dim;
    const auto again = index.Query(qv, k, q);
    ASSERT_EQ(again.size(), first[q].size()) << "query " << q;
    for (size_t i = 0; i < again.size(); ++i) {
      EXPECT_EQ(again[i].id, first[q][i].id) << "query " << q << " rank " << i;
      EXPECT_EQ(again[i].score, first[q][i].score) << "query " << q;
    }
  }

  // QueryBatch at 1, 2 and 4 threads: identical to the serial answers for
  // every query, whatever thread each one happened to run on.
  std::vector<uint32_t> excludes(queries);
  for (uint32_t q = 0; q < queries; ++q) excludes[q] = q;
  for (uint32_t threads : {1u, 2u, 4u}) {
    std::vector<std::vector<ScoredId>> batch;
    ASSERT_TRUE(index
                    .QueryBatch(data.data(), queries, dim, k, threads, &batch,
                                excludes.data())
                    .ok());
    ASSERT_EQ(batch.size(), queries);
    for (uint32_t q = 0; q < queries; ++q) {
      ASSERT_EQ(batch[q].size(), first[q].size())
          << "threads=" << threads << " query " << q;
      for (size_t i = 0; i < batch[q].size(); ++i) {
        EXPECT_EQ(batch[q][i].id, first[q][i].id)
            << "threads=" << threads << " query " << q << " rank " << i;
        EXPECT_EQ(batch[q][i].score, first[q][i].score)
            << "threads=" << threads << " query " << q;
      }
    }
  }
}

// --------------------------- integration with the engine ---------------------------

TEST(IvfIndexTest, ServesSisgMatchingEngine) {
  DatasetSpec spec;
  spec.catalog.num_items = 600;
  spec.catalog.num_leaf_categories = 12;
  spec.users.num_user_types = 60;
  spec.num_train_sessions = 2000;
  spec.num_test_sessions = 100;
  auto ds = SyntheticDataset::Generate(spec);
  ASSERT_TRUE(ds.ok());
  SisgConfig config;
  config.variant = SisgVariant::kSisgFU;
  config.sgns.dim = 16;
  config.sgns.epochs = 2;
  config.sgns.negatives = 5;
  SisgPipeline pipeline(config);
  auto model = pipeline.Train(*ds);
  ASSERT_TRUE(model.ok());
  auto engine = model->BuildMatchingEngine();
  ASSERT_TRUE(engine.ok());

  IvfIndex index;
  IvfOptions opts;
  opts.kmeans.num_clusters = 16;
  opts.nprobe = 6;
  ASSERT_TRUE(index
                  .Build(engine->candidate_matrix().data(), engine->num_items(),
                         engine->dim(), opts)
                  .ok());
  // ANN top-10 overlaps brute-force top-10 substantially.
  double recall = 0.0;
  uint32_t queries = 0;
  for (uint32_t item = 0; item < 100; ++item) {
    if (!engine->HasItem(item)) continue;
    const auto exact = engine->Query(item, 10);
    const auto approx = index.Query(engine->QueryRow(item), 10, item);
    if (exact.empty()) continue;
    int common = 0;
    for (const auto& a : exact) {
      for (const auto& b : approx) common += a.id == b.id;
    }
    recall += static_cast<double>(common) / exact.size();
    ++queries;
  }
  ASSERT_GT(queries, 50u);
  EXPECT_GT(recall / queries, 0.5);
  EXPECT_LT(index.ExpectedScanFraction(), 0.5);
}

// --------------------------- IVF persistence ---------------------------

void FlipIndexByte(const std::string& path, long offset) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  const int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  std::fputc(c ^ 0x10, f);
  std::fclose(f);
}

TEST(IvfIndexTest, SaveLoadRoundTripServesIdentically) {
  Rng rng(11);
  const uint32_t n = 500, dim = 12;
  std::vector<float> data(static_cast<size_t>(n) * dim);
  for (auto& x : data) x = rng.UniformFloat() - 0.5f;
  IvfIndex index;
  IvfOptions opts;
  opts.kmeans.num_clusters = 12;
  opts.nprobe = 4;
  ASSERT_TRUE(index.Build(data.data(), n, dim, opts).ok());

  const std::string path = ::testing::TempDir() + "/ivf_roundtrip.idx";
  std::remove(path.c_str());
  ASSERT_TRUE(index.Save(path).ok());
  auto loaded = IvfIndex::Load(path);
  ASSERT_TRUE(loaded.ok());

  EXPECT_EQ(loaded->num_vectors(), index.num_vectors());
  EXPECT_EQ(loaded->dim(), index.dim());
  EXPECT_EQ(loaded->effective_nprobe(), index.effective_nprobe());
  EXPECT_DOUBLE_EQ(loaded->ExpectedScanFraction(), index.ExpectedScanFraction());
  // Every query routes to the same lists and scores the same rows.
  for (uint32_t q = 0; q < 40; ++q) {
    const float* qv = data.data() + static_cast<size_t>(q) * dim;
    const auto before = index.Query(qv, 10, q);
    const auto after = loaded->Query(qv, 10, q);
    ASSERT_EQ(before.size(), after.size()) << "query " << q;
    for (size_t i = 0; i < before.size(); ++i) {
      EXPECT_EQ(before[i].id, after[i].id) << "query " << q << " rank " << i;
      EXPECT_EQ(before[i].score, after[i].score) << "query " << q;
    }
  }
  std::remove(path.c_str());
}

TEST(IvfIndexTest, CorruptedArtifactIsDataLoss) {
  Rng rng(13);
  const uint32_t n = 100, dim = 8;
  std::vector<float> data(static_cast<size_t>(n) * dim);
  for (auto& x : data) x = rng.UniformFloat() - 0.5f;
  IvfIndex index;
  IvfOptions opts;
  opts.kmeans.num_clusters = 4;
  ASSERT_TRUE(index.Build(data.data(), n, dim, opts).ok());

  const std::string path = ::testing::TempDir() + "/ivf_corrupt.idx";
  std::remove(path.c_str());
  ASSERT_TRUE(index.Save(path).ok());
  FlipIndexByte(path, static_cast<long>(kArtifactHeaderBytes) + 200);
  EXPECT_EQ(IvfIndex::Load(path).status().code(), StatusCode::kDataLoss);

  // An unbuilt index refuses to save rather than writing an empty artifact.
  IvfIndex empty;
  EXPECT_EQ(empty.Save(path).code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

// --------------------------- engine ANN degradation ---------------------------

class MatchingEngineAnnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(21);
    const uint32_t n = 400, dim = 8;
    std::vector<float> in(static_cast<size_t>(n) * dim);
    for (auto& x : in) x = rng.UniformFloat() + 0.1f;  // no zero rows
    ASSERT_TRUE(engine_
                    .Build(std::move(in), {}, n, dim,
                           SimilarityMode::kCosineInput)
                    .ok());
  }

  IvfOptions FullProbe() const {
    IvfOptions opts;
    opts.kmeans.num_clusters = 8;
    opts.nprobe = 8;  // scan everything: ANN results == brute force
    return opts;
  }

  MatchingEngine engine_;
};

TEST_F(MatchingEngineAnnTest, EnableIvfServesIdenticalResultsAtFullProbe) {
  const auto brute = engine_.Query(3, 10);
  ASSERT_TRUE(engine_.EnableIvf(FullProbe()).ok());
  EXPECT_EQ(engine_.ann_backend(), AnnBackend::kIvf);
  EXPECT_FALSE(engine_.degraded());
  const auto ann = engine_.Query(3, 10);
  ASSERT_EQ(ann.size(), brute.size());
  for (size_t i = 0; i < ann.size(); ++i) EXPECT_EQ(ann[i].id, brute[i].id);
}

TEST_F(MatchingEngineAnnTest, FailedEnableDegradesToBruteForce) {
  const auto before = engine_.Query(5, 10);
  IvfOptions bad = FullProbe();
  bad.nprobe = 0;  // rejected by IvfIndex::Build
  EXPECT_FALSE(engine_.EnableIvf(bad).ok());
  EXPECT_TRUE(engine_.degraded());
  EXPECT_EQ(engine_.ann_backend(), AnnBackend::kBruteForce);
  // The query path never goes down with the index.
  const auto after = engine_.Query(5, 10);
  ASSERT_EQ(after.size(), before.size());
  for (size_t i = 0; i < after.size(); ++i) EXPECT_EQ(after[i].id, before[i].id);

  HnswOptions bad_hnsw;
  bad_hnsw.M = 1;  // rejected by HnswIndex::Build
  EXPECT_FALSE(engine_.EnableHnsw(bad_hnsw).ok());
  EXPECT_EQ(engine_.ann_backend(), AnnBackend::kBruteForce);
  EXPECT_FALSE(engine_.Query(5, 10).empty());
}

TEST_F(MatchingEngineAnnTest, SaveAndReloadIvfRoundTrip) {
  const std::string path = ::testing::TempDir() + "/engine_ivf.idx";
  std::remove(path.c_str());
  // Saving before any IVF index exists is an error, not a crash.
  EXPECT_EQ(engine_.SaveIvf(path).code(), StatusCode::kFailedPrecondition);

  ASSERT_TRUE(engine_.EnableIvf(FullProbe()).ok());
  ASSERT_TRUE(engine_.SaveIvf(path).ok());
  const auto built = engine_.Query(7, 10);

  // A second engine over the same candidates serves from the saved index.
  Rng rng(21);
  const uint32_t n = 400, dim = 8;
  std::vector<float> in(static_cast<size_t>(n) * dim);
  for (auto& x : in) x = rng.UniformFloat() + 0.1f;
  MatchingEngine other;
  ASSERT_TRUE(
      other.Build(std::move(in), {}, n, dim, SimilarityMode::kCosineInput)
          .ok());
  ASSERT_TRUE(other.EnableIvfFromFile(path).ok());
  EXPECT_EQ(other.ann_backend(), AnnBackend::kIvf);
  EXPECT_FALSE(other.degraded());
  const auto reloaded = other.Query(7, 10);
  ASSERT_EQ(reloaded.size(), built.size());
  for (size_t i = 0; i < reloaded.size(); ++i) {
    EXPECT_EQ(reloaded[i].id, built[i].id);
  }
  std::remove(path.c_str());
}

TEST_F(MatchingEngineAnnTest, CorruptIvfFileFallsBackToBruteForce) {
  const std::string path = ::testing::TempDir() + "/engine_ivf_bad.idx";
  std::remove(path.c_str());
  ASSERT_TRUE(engine_.EnableIvf(FullProbe()).ok());
  ASSERT_TRUE(engine_.SaveIvf(path).ok());
  FlipIndexByte(path, static_cast<long>(kArtifactHeaderBytes) + 48);

  Rng rng(21);
  const uint32_t n = 400, dim = 8;
  std::vector<float> in(static_cast<size_t>(n) * dim);
  for (auto& x : in) x = rng.UniformFloat() + 0.1f;
  MatchingEngine other;
  ASSERT_TRUE(
      other.Build(std::move(in), {}, n, dim, SimilarityMode::kCosineInput)
          .ok());
  const auto brute = other.Query(9, 10);
  EXPECT_EQ(other.EnableIvfFromFile(path).code(), StatusCode::kDataLoss);
  EXPECT_TRUE(other.degraded());
  EXPECT_EQ(other.ann_backend(), AnnBackend::kBruteForce);
  const auto after = other.Query(9, 10);
  ASSERT_EQ(after.size(), brute.size());
  for (size_t i = 0; i < after.size(); ++i) EXPECT_EQ(after[i].id, brute[i].id);
  std::remove(path.c_str());
}

TEST_F(MatchingEngineAnnTest, MismatchedIvfFileIsFailedPrecondition) {
  // Index built for a different engine shape (dim 4, not 8).
  Rng rng(33);
  const uint32_t n = 50, dim = 4;
  std::vector<float> small(static_cast<size_t>(n) * dim);
  for (auto& x : small) x = rng.UniformFloat() + 0.1f;
  IvfIndex index;
  IvfOptions opts;
  opts.kmeans.num_clusters = 2;
  ASSERT_TRUE(index.Build(small.data(), n, dim, opts).ok());
  const std::string path = ::testing::TempDir() + "/engine_ivf_shape.idx";
  std::remove(path.c_str());
  ASSERT_TRUE(index.Save(path).ok());

  EXPECT_EQ(engine_.EnableIvfFromFile(path).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(engine_.degraded());
  EXPECT_EQ(engine_.ann_backend(), AnnBackend::kBruteForce);
  EXPECT_FALSE(engine_.Query(2, 5).empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sisg
