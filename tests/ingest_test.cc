// Ingestion pipeline suite: streaming session reader (chunking, error
// tolerance, line numbers), the open-addressing count map, count-based
// vocabulary construction, the packed corpus arena (round trip + corruption
// harness), and — the core guarantee — thread-count-invariant corpus bytes.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/io_util.h"
#include "core/pipeline.h"
#include "corpus/corpus.h"
#include "corpus/count_map.h"
#include "corpus/packed_corpus.h"
#include "corpus/vocabulary.h"
#include "datagen/dataset.h"
#include "datagen/session_stream.h"

namespace sisg {
namespace {

std::string FreshPath(const std::string& name) {
  const std::string path =
      ::testing::TempDir() + "/" + name + "." + std::to_string(getpid());
  std::remove(path.c_str());
  return path;
}

void FlipByteAt(const std::string& path, long offset) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  const int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  std::fputc(c ^ 0x40, f);
  std::fclose(f);
}

long FileSize(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return -1;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return size;
}

class IngestFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    DatasetSpec spec;
    spec.catalog.num_items = 300;
    spec.catalog.num_leaf_categories = 8;
    spec.catalog.num_shops = 30;
    spec.catalog.num_brands = 20;
    spec.users.num_user_types = 40;
    spec.num_train_sessions = 700;  // > 2 ingest chunks of 256
    spec.num_test_sessions = 10;
    auto ds = SyntheticDataset::Generate(spec);
    ASSERT_TRUE(ds.ok());
    dataset_ = std::make_unique<SyntheticDataset>(std::move(ds).value());
    token_space_ =
        TokenSpace::Create(&dataset_->catalog(), &dataset_->users());
  }

  /// Writes raw session lines (already formatted) to a fresh file.
  std::string WriteLines(const std::string& name,
                         const std::vector<std::string>& lines) {
    const std::string path = FreshPath(name);
    std::ofstream out(path);
    for (const auto& l : lines) out << l << "\n";
    return path;
  }

  std::unique_ptr<SyntheticDataset> dataset_;
  TokenSpace token_space_;
};

// --------------------------- session stream ---------------------------

TEST_F(IngestFixture, StreamChunksPreserveOrderAndCount) {
  const std::string path = FreshPath("stream_rt.txt");
  ASSERT_TRUE(WriteSessionsText(dataset_->train_sessions(), dataset_->users(),
                                path)
                  .ok());
  SessionStreamOptions opts;
  opts.chunk_sessions = 64;
  auto stream = SessionStream::Open(dataset_->users(), path, opts);
  ASSERT_TRUE(stream.ok());
  std::vector<Session> all;
  std::vector<Session> chunk;
  size_t chunks = 0;
  for (;;) {
    ASSERT_TRUE(stream->NextChunk(&chunk).ok());
    if (chunk.empty()) break;
    EXPECT_LE(chunk.size(), 64u);
    ++chunks;
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
  EXPECT_GT(chunks, 10u);
  ASSERT_EQ(all.size(), dataset_->train_sessions().size());
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].user_type, dataset_->train_sessions()[i].user_type);
    EXPECT_EQ(all[i].items, dataset_->train_sessions()[i].items);
  }
  EXPECT_EQ(stream->stats().sessions, all.size());
  EXPECT_EQ(stream->stats().lines_skipped, 0u);
  std::remove(path.c_str());
}

TEST_F(IngestFixture, StreamErrorsCarryLineNumbers) {
  const std::string ut = dataset_->users().TypeToken(0);
  const std::string path = WriteLines(
      "stream_lineno.txt", {ut + "\t1 2 3", ut + "\t4 bogus 6"});
  auto stream = SessionStream::Open(dataset_->users(), path);
  ASSERT_TRUE(stream.ok());
  std::vector<Session> chunk;
  const Status st = stream->NextChunk(&chunk);
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
  EXPECT_NE(st.message().find("line 2"), std::string::npos) << st.ToString();
  std::remove(path.c_str());
}

TEST_F(IngestFixture, StreamMaxErrorsSkipsAndCounts) {
  const std::string ut = dataset_->users().TypeToken(3);
  const std::string path = WriteLines(
      "stream_skip.txt",
      {ut + "\t1 2 3",
       "no-tab-here",               // malformed: no tab
       "not_a_usertype\t5 6",      // malformed: unknown user type
       ut + "\t7 8",
       ut + "\t"});                 // malformed: empty session
  SessionStreamOptions opts;
  opts.max_errors = 10;
  auto stream = SessionStream::Open(dataset_->users(), path, opts);
  ASSERT_TRUE(stream.ok());
  std::vector<Session> chunk;
  ASSERT_TRUE(stream->NextChunk(&chunk).ok());
  EXPECT_EQ(chunk.size(), 2u);
  EXPECT_EQ(chunk[1].items, (std::vector<uint32_t>{7, 8}));
  EXPECT_EQ(stream->stats().lines_skipped, 3u);
  EXPECT_NE(stream->stats().first_error.find("line 2"), std::string::npos);

  // The same file under a tighter budget fails on the third bad line.
  opts.max_errors = 2;
  auto strict = SessionStream::Open(dataset_->users(), path, opts);
  ASSERT_TRUE(strict.ok());
  EXPECT_EQ(strict->NextChunk(&chunk).code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST_F(IngestFixture, StreamMaxErrorsAtChunkBoundary) {
  // The budget-exhausting bad line lands exactly where a chunk closes:
  // the first chunk must still be handed out intact, and the error must
  // surface on the call that reads past the boundary.
  const std::string ut = dataset_->users().TypeToken(1);
  const std::string path = WriteLines(
      "stream_chunk_boundary.txt",
      {ut + "\t1 2", ut + "\t3",  // chunk 1 (chunk_sessions = 2)
       "bogus-line-a",            // consumes the whole error budget
       ut + "\t4 5",              // chunk 2
       "bogus-line-b",            // budget exhausted -> hard error
       ut + "\t6"});
  SessionStreamOptions opts;
  opts.chunk_sessions = 2;
  opts.max_errors = 1;
  auto stream = SessionStream::Open(dataset_->users(), path, opts);
  ASSERT_TRUE(stream.ok());
  std::vector<Session> chunk;
  ASSERT_TRUE(stream->NextChunk(&chunk).ok());
  ASSERT_EQ(chunk.size(), 2u);
  EXPECT_EQ(chunk[1].items, (std::vector<uint32_t>{3}));
  const Status st = stream->NextChunk(&chunk);
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
  EXPECT_NE(st.message().find("line 5"), std::string::npos) << st.ToString();
  EXPECT_EQ(stream->stats().lines_skipped, 1u);
  std::remove(path.c_str());
}

TEST_F(IngestFixture, StreamMaxErrorsOnFinalLine) {
  // A bad final line past the budget fails the stream even though every
  // session before it was already parsed; within budget it is skipped and
  // the stream drains cleanly to EOF.
  const std::string ut = dataset_->users().TypeToken(2);
  const std::string path = WriteLines(
      "stream_final_line.txt", {ut + "\t1 2", ut + "\t3 4", "trailing-junk"});
  SessionStreamOptions opts;
  opts.max_errors = 0;  // strict
  auto strict = SessionStream::Open(dataset_->users(), path, opts);
  ASSERT_TRUE(strict.ok());
  std::vector<Session> chunk;
  const Status st = strict->NextChunk(&chunk);
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
  EXPECT_NE(st.message().find("line 3"), std::string::npos) << st.ToString();

  opts.max_errors = 1;
  auto lax = SessionStream::Open(dataset_->users(), path, opts);
  ASSERT_TRUE(lax.ok());
  ASSERT_TRUE(lax->NextChunk(&chunk).ok());
  EXPECT_EQ(chunk.size(), 2u);
  EXPECT_TRUE(lax->NextChunk(&chunk).ok());
  EXPECT_TRUE(chunk.empty());  // EOF
  EXPECT_EQ(lax->stats().lines_skipped, 1u);
  EXPECT_EQ(lax->stats().lines_read, 3u);
  std::remove(path.c_str());
}

TEST_F(IngestFixture, StreamAllLinesBad) {
  // Every line malformed: under a covering budget the stream yields zero
  // sessions but a clean EOF with full skip accounting; one short of
  // covering, the last bad line is a hard error.
  const std::string path = WriteLines(
      "stream_all_bad.txt", {"junk-1", "junk-2\tx", "zzz_not_a_usertype\t1"});
  SessionStreamOptions opts;
  opts.max_errors = 3;
  auto stream = SessionStream::Open(dataset_->users(), path, opts);
  ASSERT_TRUE(stream.ok());
  std::vector<Session> chunk;
  EXPECT_TRUE(stream->NextChunk(&chunk).ok());
  EXPECT_TRUE(chunk.empty());
  EXPECT_EQ(stream->stats().lines_skipped, 3u);
  EXPECT_EQ(stream->stats().sessions, 0u);
  EXPECT_FALSE(stream->stats().first_error.empty());

  opts.max_errors = 2;
  auto strict = SessionStream::Open(dataset_->users(), path, opts);
  ASSERT_TRUE(strict.ok());
  const Status st = strict->NextChunk(&chunk);
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
  EXPECT_NE(st.message().find("line 3"), std::string::npos) << st.ToString();
  std::remove(path.c_str());
}

TEST_F(IngestFixture, StreamValidatesItemIdsAgainstCatalog) {
  const std::string ut = dataset_->users().TypeToken(0);
  const std::string path =
      WriteLines("stream_itemrange.txt", {ut + "\t1 999999"});
  SessionStreamOptions opts;
  opts.max_item_id = dataset_->catalog().num_items();
  auto stream = SessionStream::Open(dataset_->users(), path, opts);
  ASSERT_TRUE(stream.ok());
  std::vector<Session> chunk;
  const Status st = stream->NextChunk(&chunk);
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
  EXPECT_NE(st.message().find("outside the catalog"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(IngestFixture, ReadSessionsTextSurfacesSkips) {
  const std::string ut = dataset_->users().TypeToken(1);
  const std::string path = WriteLines("read_tolerant.txt",
                                      {ut + "\t1 2", "garbage", ut + "\t3 4"});
  // Strict default: fails with the line number.
  auto strict = ReadSessionsText(dataset_->users(), path);
  EXPECT_EQ(strict.status().code(), StatusCode::kCorruption);
  EXPECT_NE(strict.status().message().find("line 2"), std::string::npos);
  // Tolerant: skips and reports.
  SessionStreamOptions opts;
  opts.max_errors = 1;
  IngestStats stats;
  auto tolerant = ReadSessionsText(dataset_->users(), path, opts, &stats);
  ASSERT_TRUE(tolerant.ok());
  EXPECT_EQ(tolerant->size(), 2u);
  EXPECT_EQ(stats.lines_skipped, 1u);
  EXPECT_EQ(stats.lines_read, 3u);
  std::remove(path.c_str());
}

// --------------------------- count map ---------------------------

TEST(CountMapTest, AddCountMergeGrow) {
  TokenCountMap a;
  for (uint32_t t = 0; t < 1000; ++t) a.Add(t, t + 1);
  for (uint32_t t = 0; t < 1000; ++t) a.Add(t);
  EXPECT_EQ(a.size(), 1000u);
  EXPECT_EQ(a.Count(999), 1001u);
  EXPECT_EQ(a.Count(12345), 0u);

  TokenCountMap b;
  b.Reserve(2000);
  b.Add(5, 100);
  b.Add(5000, 7);
  b.MergeFrom(a);
  EXPECT_EQ(b.size(), 1001u);
  EXPECT_EQ(b.Count(5), 107u);  // 100 + (5+1) + 1 from the merge
  EXPECT_EQ(b.Count(5000), 7u);

  uint64_t total = 0;
  b.ForEach([&](uint32_t, uint64_t c) { total += c; });
  uint64_t expect = 100 + 7;
  for (uint32_t t = 0; t < 1000; ++t) expect += t + 2;
  EXPECT_EQ(total, expect);
}

// --------------------------- vocabulary from counts ---------------------------

TEST_F(IngestFixture, BuildFromCountsMatchesSequenceBuild) {
  std::vector<std::vector<uint32_t>> seqs = {{1, 2, 2, 3, 3, 3}, {3, 2, 3, 7}};
  Vocabulary from_seqs;
  ASSERT_TRUE(
      from_seqs.Build(seqs, token_space_.num_tokens(), 1, token_space_).ok());

  TokenCountMap counts;
  for (const auto& s : seqs) {
    for (uint32_t t : s) counts.Add(t);
  }
  Vocabulary from_counts;
  ASSERT_TRUE(from_counts
                  .BuildFromCounts(counts, token_space_.num_tokens(), 1,
                                   token_space_)
                  .ok());
  ASSERT_EQ(from_counts.size(), from_seqs.size());
  for (uint32_t v = 0; v < from_seqs.size(); ++v) {
    EXPECT_EQ(from_counts.ToToken(v), from_seqs.ToToken(v));
    EXPECT_EQ(from_counts.Frequency(v), from_seqs.Frequency(v));
    EXPECT_EQ(from_counts.ClassOf(v), from_seqs.ClassOf(v));
  }
  EXPECT_EQ(from_counts.total_count(), from_seqs.total_count());
}

// Pins the id-assignment total order: count descending, token id ascending
// on ties. Any change here silently reshuffles every trained embedding row,
// so this must never drift.
TEST_F(IngestFixture, VocabIdAssignmentIsPinned) {
  TokenCountMap counts;
  counts.Add(50, 3);  // tied with 9 — lower token id wins
  counts.Add(9, 3);
  counts.Add(4, 10);
  counts.Add(200, 1);
  Vocabulary v;
  ASSERT_TRUE(
      v.BuildFromCounts(counts, token_space_.num_tokens(), 1, token_space_)
          .ok());
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v.ToToken(0), 4u);    // count 10
  EXPECT_EQ(v.ToToken(1), 9u);    // count 3, tie -> smaller token first
  EXPECT_EQ(v.ToToken(2), 50u);   // count 3
  EXPECT_EQ(v.ToToken(3), 200u);  // count 1
  EXPECT_EQ(v.ToVocab(9), 1);
  EXPECT_EQ(v.ToVocab(50), 2);
}

TEST_F(IngestFixture, BuildFromCountsRejectsOutOfRange) {
  TokenCountMap counts;
  counts.Add(token_space_.num_tokens() + 3, 5);
  Vocabulary v;
  EXPECT_EQ(
      v.BuildFromCounts(counts, token_space_.num_tokens(), 1, token_space_)
          .code(),
      StatusCode::kOutOfRange);
}

// --------------------------- enricher edge cases ---------------------------

TEST_F(IngestFixture, EnricherEmptySession) {
  Session s;
  s.user_type = 2;  // no items
  SequenceEnricher both(&token_space_, &dataset_->catalog(), {});
  const auto seq = both.Enrich(s);
  // No items -> no item/SI tokens, just the user-type token.
  ASSERT_EQ(seq.size(), 1u);
  EXPECT_EQ(seq[0], token_space_.UserTypeToken(2));

  SequenceEnricher none(
      &token_space_, &dataset_->catalog(),
      {.include_item_si = false, .include_user_type = false});
  EXPECT_TRUE(none.Enrich(s).empty());
}

TEST_F(IngestFixture, CorpusDropsSingleTokenSequences) {
  // One item, no SI, no UT: the enriched sequence has a single token and
  // must be dropped (a skip-gram window needs >= 2).
  std::vector<Session> sessions(3);
  for (auto& s : sessions) {
    s.user_type = 0;
    s.items = {7};
  }
  sessions.push_back({});
  sessions.back().user_type = 0;
  sessions.back().items = {1, 2};
  CorpusOptions opts;
  opts.enrich.include_item_si = false;
  opts.enrich.include_user_type = false;
  Corpus corpus;
  ASSERT_TRUE(corpus
                  .Build(sessions, token_space_, dataset_->catalog(), opts)
                  .ok());
  EXPECT_EQ(corpus.num_sequences(), 1u);
  EXPECT_EQ(corpus.num_tokens(), 2u);

  // All-dropped is an error, as before.
  sessions.pop_back();
  Corpus empty;
  EXPECT_EQ(
      empty.Build(sessions, token_space_, dataset_->catalog(), opts).code(),
      StatusCode::kInvalidArgument);
}

TEST_F(IngestFixture, CorpusRejectsOutOfRangeSessions) {
  std::vector<Session> sessions(1);
  sessions[0].user_type = token_space_.num_user_types() + 1;
  sessions[0].items = {1, 2};
  Corpus corpus;
  EXPECT_EQ(corpus
                .Build(sessions, token_space_, dataset_->catalog(),
                       CorpusOptions{})
                .code(),
            StatusCode::kOutOfRange);
  sessions[0].user_type = 0;
  sessions[0].items = {1, token_space_.num_items() + 50};
  EXPECT_EQ(corpus
                .Build(sessions, token_space_, dataset_->catalog(),
                       CorpusOptions{})
                .code(),
            StatusCode::kOutOfRange);
}

// --------------------------- packed corpus ---------------------------

TEST(PackedCorpusTest, AppendAndView) {
  PackedCorpus pc;
  EXPECT_TRUE(pc.empty());
  pc.AppendSequence(std::vector<uint32_t>{1, 2, 3});
  pc.AppendSequence(std::vector<uint32_t>{4, 5});
  ASSERT_EQ(pc.size(), 2u);
  EXPECT_EQ(pc.num_tokens(), 5u);
  EXPECT_EQ(pc.seq_size(0), 3u);
  const auto s1 = pc.seq(1);
  ASSERT_EQ(s1.size(), 2u);
  EXPECT_EQ(s1[0], 4u);
  EXPECT_EQ(s1[1], 5u);
  // The arena is 64-byte aligned for the SIMD kernels.
  EXPECT_EQ(reinterpret_cast<uintptr_t>(pc.tokens().data()) % 64, 0u);
}

TEST(PackedCorpusTest, SaveLoadRoundTrip) {
  PackedCorpus pc;
  for (uint32_t i = 0; i < 100; ++i) {
    std::vector<uint32_t> seq(1 + i % 7, i);
    pc.AppendSequence(seq);
  }
  const std::string path = FreshPath("packed_rt.bin");
  ASSERT_TRUE(pc.Save(path).ok());
  auto loaded = PackedCorpus::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(*loaded == pc);
  // A token bound below the max token is DataLoss.
  EXPECT_EQ(PackedCorpus::Load(path, 50).status().code(),
            StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(PackedCorpusTest, CorruptionIsDataLossNeverPartialData) {
  PackedCorpus pc;
  for (uint32_t i = 0; i < 64; ++i) {
    pc.AppendSequence(std::vector<uint32_t>{i, i + 1, i + 2});
  }
  const std::string path = FreshPath("packed_corrupt.bin");
  ASSERT_TRUE(pc.Save(path).ok());
  const long size = FileSize(path);
  ASSERT_GT(size, static_cast<long>(kArtifactHeaderBytes));

  // Byte flips anywhere in the payload: checksum rejects before parsing.
  for (const long off : {static_cast<long>(kArtifactHeaderBytes),
                         static_cast<long>(kArtifactHeaderBytes) + 40,
                         size - 1}) {
    FlipByteAt(path, off);
    EXPECT_EQ(PackedCorpus::Load(path).status().code(), StatusCode::kDataLoss)
        << "offset " << off;
    FlipByteAt(path, off);  // restore
    ASSERT_TRUE(PackedCorpus::Load(path).ok());
  }

  // Truncation at any boundary is DataLoss too.
  ASSERT_EQ(::truncate(path.c_str(), size / 2), 0);
  EXPECT_EQ(PackedCorpus::Load(path).status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

// --------------------------- parallel build determinism ---------------------------

TEST_F(IngestFixture, CorpusBytesAreThreadCountInvariant) {
  CorpusOptions base;
  base.min_count = 2;
  Corpus serial;
  ASSERT_TRUE(serial
                  .Build(dataset_->train_sessions(), token_space_,
                         dataset_->catalog(), base)
                  .ok());
  ASSERT_GT(serial.num_sequences(), 0u);

  for (uint32_t threads : {2u, 4u, 7u}) {
    CorpusOptions opts = base;
    opts.num_threads = threads;
    Corpus parallel;
    ASSERT_TRUE(parallel
                    .Build(dataset_->train_sessions(), token_space_,
                           dataset_->catalog(), opts)
                    .ok());
    // Byte-identical arena...
    ASSERT_TRUE(parallel.packed() == serial.packed()) << threads << " threads";
    // ...and identical vocabulary (ids, counts, classes).
    ASSERT_EQ(parallel.vocab().size(), serial.vocab().size());
    for (uint32_t v = 0; v < serial.vocab().size(); ++v) {
      ASSERT_EQ(parallel.vocab().ToToken(v), serial.vocab().ToToken(v));
      ASSERT_EQ(parallel.vocab().Frequency(v), serial.vocab().Frequency(v));
    }
  }
}

// The flat fast path (per-item block table + click counters) and the
// open-addressing fallback (materialized enriched tokens + count maps) must
// produce byte-identical corpora: forcing flat_count_threshold = 0 routes
// the same build through the fallback.
TEST_F(IngestFixture, FlatAndMapCountingPathsAreByteIdentical) {
  for (const uint32_t threads : {1u, 4u}) {
    CorpusOptions opts;
    opts.min_count = 2;
    opts.num_threads = threads;
    Corpus flat;
    ASSERT_TRUE(flat.Build(dataset_->train_sessions(), token_space_,
                           dataset_->catalog(), opts)
                    .ok());

    opts.flat_count_threshold = 0;  // force the open-addressing fallback
    Corpus mapped;
    ASSERT_TRUE(mapped
                    .Build(dataset_->train_sessions(), token_space_,
                           dataset_->catalog(), opts)
                    .ok());

    ASSERT_TRUE(flat.packed() == mapped.packed()) << threads << " threads";
    ASSERT_EQ(flat.vocab().size(), mapped.vocab().size());
    for (uint32_t v = 0; v < flat.vocab().size(); ++v) {
      ASSERT_EQ(flat.vocab().ToToken(v), mapped.vocab().ToToken(v));
      ASSERT_EQ(flat.vocab().Frequency(v), mapped.vocab().Frequency(v));
    }
  }
}

TEST_F(IngestFixture, StreamedBuildMatchesMaterializedBuild) {
  CorpusOptions opts;
  opts.min_count = 2;
  opts.num_threads = 4;
  Corpus from_vector;
  ASSERT_TRUE(from_vector
                  .Build(dataset_->train_sessions(), token_space_,
                         dataset_->catalog(), opts)
                  .ok());

  // An odd chunk size that does not divide the session count: chunk
  // boundaries must not leak into the output.
  VectorSessionSource source(&dataset_->train_sessions(), 97);
  Corpus from_stream;
  ASSERT_TRUE(from_stream
                  .BuildFromSource(&source, token_space_, dataset_->catalog(),
                                   opts)
                  .ok());
  EXPECT_TRUE(from_stream.packed() == from_vector.packed());
  EXPECT_EQ(from_stream.vocab().size(), from_vector.vocab().size());
}

// --------------------------- corpus cache ---------------------------

TEST_F(IngestFixture, CorpusCacheRoundTripAndGuards) {
  CorpusOptions opts;
  opts.min_count = 2;
  Corpus corpus;
  ASSERT_TRUE(corpus
                  .Build(dataset_->train_sessions(), token_space_,
                         dataset_->catalog(), opts)
                  .ok());
  const std::string prefix = FreshPath("corpus_cache");
  ASSERT_TRUE(corpus.Save(prefix).ok());

  auto loaded = Corpus::Load(prefix, opts, token_space_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->packed() == corpus.packed());
  EXPECT_EQ(loaded->vocab().size(), corpus.vocab().size());
  EXPECT_EQ(loaded->vocab().total_count(), corpus.vocab().total_count());

  // Built with different options -> FailedPrecondition (callers rebuild).
  CorpusOptions other = opts;
  other.min_count = 5;
  EXPECT_EQ(Corpus::Load(prefix, other, token_space_).status().code(),
            StatusCode::kFailedPrecondition);
  other = opts;
  other.enrich.include_item_si = false;
  EXPECT_EQ(Corpus::Load(prefix, other, token_space_).status().code(),
            StatusCode::kFailedPrecondition);

  // A flipped byte in the cached corpus is DataLoss, never partial data.
  FlipByteAt(prefix + ".corpus",
             static_cast<long>(kArtifactHeaderBytes) + 20);
  EXPECT_EQ(Corpus::Load(prefix, opts, token_space_).status().code(),
            StatusCode::kDataLoss);

  std::remove((prefix + ".vocab").c_str());
  std::remove((prefix + ".corpus").c_str());
}

// --------------------------- pipeline wiring ---------------------------

TEST(PipelineOptionsTest, WindowDoublesOnlyWithItemSi) {
  SisgConfig config;
  config.sgns.window.window = 4;

  config.variant = SisgVariant::kSgns;
  EXPECT_EQ(SisgPipeline(config).EffectiveSgnsOptions().window.window, 4u);
  EXPECT_FALSE(SisgPipeline(config).EffectiveSgnsOptions().window.directional);

  config.variant = SisgVariant::kSisgU;  // user types, no SI: no doubling
  EXPECT_EQ(SisgPipeline(config).EffectiveSgnsOptions().window.window, 4u);

  config.variant = SisgVariant::kSisgF;  // SI interleaves: token window x2
  EXPECT_EQ(SisgPipeline(config).EffectiveSgnsOptions().window.window, 8u);

  config.variant = SisgVariant::kSisgFUD;
  EXPECT_EQ(SisgPipeline(config).EffectiveSgnsOptions().window.window, 8u);
  EXPECT_TRUE(SisgPipeline(config).EffectiveSgnsOptions().window.directional);
}

TEST_F(IngestFixture, StreamedPipelineMatchesMaterializedPipeline) {
  const std::string path = FreshPath("pipeline_stream.txt");
  ASSERT_TRUE(WriteSessionsText(dataset_->train_sessions(), dataset_->users(),
                                path)
                  .ok());
  SisgConfig config;
  config.variant = SisgVariant::kSisgFU;
  config.sgns.dim = 16;
  config.sgns.epochs = 1;
  config.sgns.negatives = 3;
  config.min_count = 2;
  config.ingest_threads = 4;
  const SisgPipeline pipeline(config);

  PipelineReport mat_report;
  auto materialized = pipeline.Train(dataset_->train_sessions(),
                                     dataset_->catalog(), dataset_->users(),
                                     &mat_report);
  ASSERT_TRUE(materialized.ok());

  auto stream = SessionStream::Open(dataset_->users(), path);
  ASSERT_TRUE(stream.ok());
  PipelineReport stream_report;
  auto streamed = pipeline.TrainStream(&*stream, dataset_->catalog(),
                                       dataset_->users(), &stream_report);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();

  // Same corpus, same vocab, same deterministic single-thread training.
  EXPECT_EQ(stream_report.vocab_size, mat_report.vocab_size);
  EXPECT_EQ(stream_report.corpus_sequences, mat_report.corpus_sequences);
  EXPECT_EQ(stream_report.corpus_tokens, mat_report.corpus_tokens);
  EXPECT_EQ(stream_report.train.pairs_trained, mat_report.train.pairs_trained);
  EXPECT_EQ(stream_report.ingest.sessions,
            dataset_->train_sessions().size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sisg
