// Seeded corruption fuzzing of every on-disk artifact kind: random
// truncations and byte flips over saved embedding models, vocabularies,
// packed corpora, corpus caches, and IVF indexes must always yield a typed
// DataLoss / InvalidArgument — never a crash, never a partially loaded
// object. The SISGART1 framing makes this provable: the CRC covers the
// whole payload and every header byte (magic, kind, version, reserved,
// declared size, checksum) is validated on open.

#include <gtest/gtest.h>

#include <cstdio>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "common/io_util.h"
#include "common/quant.h"
#include "common/status.h"
#include "core/ivf_index.h"
#include "core/matching_engine.h"
#include "core/pq.h"
#include "corpus/corpus.h"
#include "corpus/packed_corpus.h"
#include "corpus/vocabulary.h"
#include "datagen/dataset.h"
#include "sgns/embedding_model.h"

namespace sisg {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string out;
  char buf[1 << 14];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  if (!bytes.empty()) {
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  }
  ASSERT_EQ(std::fclose(f), 0);
}

/// One artifact under test: the file the fuzzer mutates plus a loader that
/// attempts a full load through the production code path.
struct ArtifactCase {
  std::string name;
  std::string file;
  std::function<Status()> load;
};

class IoFuzzTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const std::string dir = ::testing::TempDir();

    // A small but real corpus so the vocab / packed / cache artifacts have
    // representative payloads (multiple sections, non-trivial sizes).
    DatasetSpec spec;
    spec.catalog.num_items = 300;
    spec.catalog.num_leaf_categories = 6;
    spec.catalog.num_shops = 25;
    spec.catalog.num_brands = 20;
    spec.users.num_user_types = 40;
    spec.num_train_sessions = 800;
    spec.num_test_sessions = 10;
    auto ds = SyntheticDataset::Generate(spec);
    ASSERT_TRUE(ds.ok());
    dataset_ = new SyntheticDataset(std::move(ds).value());
    token_space_ = new TokenSpace(
        TokenSpace::Create(&dataset_->catalog(), &dataset_->users()));
    corpus_ = new Corpus();
    ASSERT_TRUE(corpus_
                    ->Build(dataset_->train_sessions(), *token_space_,
                            dataset_->catalog(), CorpusOptions{})
                    .ok());

    cases_ = new std::vector<ArtifactCase>();

    const std::string vocab_path = dir + "/fuzz.vocab_only";
    ASSERT_TRUE(corpus_->vocab().Save(vocab_path).ok());
    cases_->push_back({"vocab", vocab_path, [vocab_path] {
                         return Vocabulary::Load(vocab_path).status();
                       }});

    const std::string packed_path = dir + "/fuzz.packed";
    ASSERT_TRUE(corpus_->packed().Save(packed_path).ok());
    const uint32_t bound = corpus_->vocab().size();
    cases_->push_back({"packed_corpus", packed_path, [packed_path, bound] {
                         return PackedCorpus::Load(packed_path, bound).status();
                       }});

    // The corpus cache is two artifacts behind one prefix; fuzz each file
    // while the sibling stays pristine.
    const std::string cache_prefix = dir + "/fuzz_cache";
    ASSERT_TRUE(corpus_->Save(cache_prefix).ok());
    const CorpusOptions cache_opts = corpus_->options();
    const auto load_cache = [cache_prefix, cache_opts] {
      return Corpus::Load(cache_prefix, cache_opts, *token_space_).status();
    };
    cases_->push_back({"corpus_cache.corpus", cache_prefix + ".corpus",
                       load_cache});
    cases_->push_back({"corpus_cache.vocab", cache_prefix + ".vocab",
                       load_cache});

    const std::string emb_path = dir + "/fuzz.emb";
    EmbeddingModel model;
    ASSERT_TRUE(model.Init(128, 24, 7).ok());
    for (uint32_t r = 0; r < model.rows(); ++r) {
      for (uint32_t d = 0; d < model.dim(); ++d) {
        model.Output(r)[d] = 0.01f * static_cast<float>(r + d);
      }
    }
    ASSERT_TRUE(model.Save(emb_path).ok());
    cases_->push_back({"embedding_model", emb_path, [emb_path] {
                         return EmbeddingModel::Load(emb_path).status();
                       }});

    const std::string ivf_path = dir + "/fuzz.ivf";
    std::mt19937 rng(123);
    std::uniform_real_distribution<float> unit(-1.0f, 1.0f);
    std::vector<float> data(256 * 16);
    for (float& v : data) v = unit(rng);
    IvfIndex ivf;
    IvfOptions iopts;
    iopts.kmeans.num_clusters = 8;
    iopts.nprobe = 2;
    ASSERT_TRUE(ivf.Build(data.data(), 256, 16, iopts).ok());
    ASSERT_TRUE(ivf.Save(ivf_path).ok());
    cases_->push_back({"ivf_index", ivf_path, [ivf_path] {
                         return IvfIndex::Load(ivf_path).status();
                       }});

    // Quantized / arena artifacts. The mmap loaders validate the whole file
    // (CRC included) before handing out a mapping, so they must reject every
    // mutation exactly like the heap loaders do.
    const std::string qnt_path = dir + "/fuzz.qarena";
    Int8Arena qarena;
    ASSERT_TRUE(qarena.BuildFromRows(data.data(), 256, 16, 16).ok());
    ASSERT_TRUE(qarena.Save(qnt_path).ok());
    cases_->push_back({"int8_arena.heap", qnt_path, [qnt_path] {
                         return Int8Arena::Load(qnt_path, false).status();
                       }});
    cases_->push_back({"int8_arena.mmap", qnt_path, [qnt_path] {
                         return Int8Arena::Load(qnt_path, true).status();
                       }});

    const std::string pq_path = dir + "/fuzz.pqcbook";
    PqCodebook book;
    PqOptions popts;
    popts.m = 4;
    popts.ksub = 16;
    ASSERT_TRUE(book.Train(data.data(), 256, 16, 16, popts).ok());
    ASSERT_TRUE(book.Save(pq_path).ok());
    cases_->push_back({"pq_codebook", pq_path, [pq_path] {
                         return PqCodebook::Load(pq_path).status();
                       }});

    const std::string arena_path = dir + "/fuzz.arena";
    MatchingEngine arena_src;
    ASSERT_TRUE(arena_src
                    .Build(data, {}, 256, 16, SimilarityMode::kCosineInput)
                    .ok());
    ASSERT_TRUE(arena_src.SaveArena(arena_path).ok());
    cases_->push_back({"serving_arena.heap", arena_path, [arena_path] {
                         MatchingEngine e;
                         return e.LoadArena(arena_path, false);
                       }});
    cases_->push_back({"serving_arena.mmap", arena_path, [arena_path] {
                         MatchingEngine e;
                         return e.LoadArena(arena_path, true);
                       }});

    for (const ArtifactCase& c : *cases_) {
      pristine_.push_back(ReadFileBytes(c.file));
      ASSERT_GT(pristine_.back().size(), 36u) << c.name;
    }
  }

  static void TearDownTestSuite() {
    for (const ArtifactCase& c : *cases_) std::remove(c.file.c_str());
    delete cases_;
    cases_ = nullptr;
    pristine_.clear();
    delete corpus_;
    corpus_ = nullptr;
    delete token_space_;
    token_space_ = nullptr;
    delete dataset_;
    dataset_ = nullptr;
  }

  void TearDown() override {
    // Whatever a test did, leave every artifact pristine for the next one.
    for (size_t i = 0; i < cases_->size(); ++i) {
      WriteFileBytes((*cases_)[i].file, pristine_[i]);
    }
  }

  static void ExpectTypedFailure(const ArtifactCase& c, const Status& st,
                                 const std::string& what) {
    ASSERT_FALSE(st.ok()) << c.name << ": " << what
                          << " loaded successfully from corrupt bytes";
    ASSERT_TRUE(st.code() == StatusCode::kDataLoss ||
                st.code() == StatusCode::kInvalidArgument)
        << c.name << ": " << what << " produced untyped error: "
        << st.ToString();
  }

  static SyntheticDataset* dataset_;
  static TokenSpace* token_space_;
  static Corpus* corpus_;
  static std::vector<ArtifactCase>* cases_;
  static std::vector<std::string> pristine_;
};

SyntheticDataset* IoFuzzTest::dataset_ = nullptr;
TokenSpace* IoFuzzTest::token_space_ = nullptr;
Corpus* IoFuzzTest::corpus_ = nullptr;
std::vector<ArtifactCase>* IoFuzzTest::cases_ = nullptr;
std::vector<std::string> IoFuzzTest::pristine_;

TEST_F(IoFuzzTest, PristineArtifactsLoad) {
  for (const ArtifactCase& c : *cases_) {
    const Status st = c.load();
    EXPECT_TRUE(st.ok()) << c.name << ": " << st.ToString();
  }
}

TEST_F(IoFuzzTest, TruncationsAlwaysRejected) {
  std::mt19937_64 rng(0xF0220807);
  for (size_t i = 0; i < cases_->size(); ++i) {
    const ArtifactCase& c = (*cases_)[i];
    const std::string& orig = pristine_[i];
    std::vector<size_t> cuts = {0, 1, 8, 17, 35, 36, orig.size() - 1};
    std::uniform_int_distribution<size_t> cut_dist(1, orig.size() - 1);
    for (int r = 0; r < 24; ++r) cuts.push_back(cut_dist(rng));
    for (const size_t cut : cuts) {
      WriteFileBytes(c.file, orig.substr(0, cut));
      ExpectTypedFailure(c, c.load(),
                         "truncated to " + std::to_string(cut) + " bytes");
    }
    // Trailing garbage is a size mismatch, not silently ignored bytes.
    WriteFileBytes(c.file, orig + std::string(3, '\x5a'));
    ExpectTypedFailure(c, c.load(), "3 appended garbage bytes");
    WriteFileBytes(c.file, orig);
  }
}

TEST_F(IoFuzzTest, SeededByteFlipsAlwaysRejected) {
  std::mt19937_64 rng(0xB17F11D5);
  for (size_t i = 0; i < cases_->size(); ++i) {
    const ArtifactCase& c = (*cases_)[i];
    const std::string& orig = pristine_[i];
    std::uniform_int_distribution<size_t> byte_dist(0, orig.size() - 1);
    std::uniform_int_distribution<int> bit_dist(0, 7);
    for (int r = 0; r < 96; ++r) {
      // Bias one third of the flips into the 36-byte header, where each
      // field has its own dedicated validation path.
      const size_t idx = (r % 3 == 0)
                             ? byte_dist(rng) % 36
                             : byte_dist(rng);
      const int bit = bit_dist(rng);
      std::string mutated = orig;
      mutated[idx] = static_cast<char>(mutated[idx] ^ (1 << bit));
      WriteFileBytes(c.file, mutated);
      ExpectTypedFailure(c, c.load(),
                         "bit " + std::to_string(bit) + " of byte " +
                             std::to_string(idx) + " flipped");
    }
    WriteFileBytes(c.file, orig);
    EXPECT_TRUE(c.load().ok()) << c.name << " failed to load after restore";
  }
}

// A doctored artifact can carry a perfectly valid CRC (rewritten by an
// ArtifactWriter), so the shape metadata inside the payload gets its own
// validation layer — these must all fail as DataLoss, never load partially.
TEST_F(IoFuzzTest, ValidCrcShapeMismatchesRejected) {
  const std::string dir = ::testing::TempDir();

  const auto expect_dataloss = [](const Status& st, const std::string& what) {
    ASSERT_FALSE(st.ok()) << what << " loaded successfully";
    EXPECT_EQ(st.code(), StatusCode::kDataLoss) << what << ": "
                                                << st.ToString();
  };

  // QNTARENA whose row stride disagrees with its dim.
  {
    const std::string p = dir + "/mismatch.qarena";
    auto w = ArtifactWriter::Open(p, "QNTARENA", 1);
    ASSERT_TRUE(w.ok());
    const uint32_t num_rows = 4, dim = 16, bad_stride = 16, data_off = 92;
    ASSERT_TRUE(w->WriteScalar(num_rows).ok());
    ASSERT_TRUE(w->WriteScalar(dim).ok());
    ASSERT_TRUE(w->WriteScalar(bad_stride).ok());
    ASSERT_TRUE(w->WriteScalar(data_off).ok());
    ASSERT_TRUE(w->Commit().ok());
    expect_dataloss(Int8Arena::Load(p, false).status(), "qarena bad stride heap");
    expect_dataloss(Int8Arena::Load(p, true).status(), "qarena bad stride mmap");
    std::remove(p.c_str());
  }

  // QNTARENA with a consistent prologue but a missing code block.
  {
    const std::string p = dir + "/short.qarena";
    auto w = ArtifactWriter::Open(p, "QNTARENA", 1);
    ASSERT_TRUE(w.ok());
    // meta = 16 + 4 rows * 8B params = 48; file offset 36 + 48 = 84 rounds
    // up to 128, so the correct data_off is 92 — but no codes follow.
    const uint32_t num_rows = 4, dim = 16, stride = 64, data_off = 92;
    ASSERT_TRUE(w->WriteScalar(num_rows).ok());
    ASSERT_TRUE(w->WriteScalar(dim).ok());
    ASSERT_TRUE(w->WriteScalar(stride).ok());
    ASSERT_TRUE(w->WriteScalar(data_off).ok());
    ASSERT_TRUE(w->Commit().ok());
    expect_dataloss(Int8Arena::Load(p, false).status(), "qarena no codes heap");
    expect_dataloss(Int8Arena::Load(p, true).status(), "qarena no codes mmap");
    std::remove(p.c_str());
  }

  // PQCBOOK whose subspaces do not multiply out to dim.
  {
    const std::string p = dir + "/mismatch.pqcbook";
    auto w = ArtifactWriter::Open(p, "PQCBOOK", 1);
    ASSERT_TRUE(w.ok());
    const uint32_t dim = 16, m = 3, dsub = 8, reserved = 0;  // 3 * 8 != 16
    ASSERT_TRUE(w->WriteScalar(dim).ok());
    ASSERT_TRUE(w->WriteScalar(m).ok());
    ASSERT_TRUE(w->WriteScalar(dsub).ok());
    ASSERT_TRUE(w->WriteScalar(reserved).ok());
    ASSERT_TRUE(w->Commit().ok());
    expect_dataloss(PqCodebook::Load(p).status(), "pq shape mismatch");
    std::remove(p.c_str());
  }

  // PQCBOOK with a live-centroid count outside 1..256.
  {
    const std::string p = dir + "/badksub.pqcbook";
    auto w = ArtifactWriter::Open(p, "PQCBOOK", 1);
    ASSERT_TRUE(w.ok());
    const uint32_t dim = 16, m = 4, dsub = 4, reserved = 0;
    ASSERT_TRUE(w->WriteScalar(dim).ok());
    ASSERT_TRUE(w->WriteScalar(m).ok());
    ASSERT_TRUE(w->WriteScalar(dsub).ok());
    ASSERT_TRUE(w->WriteScalar(reserved).ok());
    const uint32_t ksub[4] = {16, 0, 16, 16};  // subspace 1 claims 0 centroids
    ASSERT_TRUE(w->Write(ksub, sizeof(ksub)).ok());
    const std::vector<float> centroids(static_cast<size_t>(m) * 256 * dsub,
                                       0.0f);
    ASSERT_TRUE(
        w->Write(centroids.data(), centroids.size() * sizeof(float)).ok());
    ASSERT_TRUE(w->Commit().ok());
    expect_dataloss(PqCodebook::Load(p).status(), "pq ksub out of range");
    std::remove(p.c_str());
  }

  // EMBARENA claiming more candidate rows than items (and a bogus mode).
  for (const uint32_t bad : {0u, 1u}) {
    const std::string p = dir + "/mismatch.arena";
    auto w = ArtifactWriter::Open(p, "EMBARENA", 1);
    ASSERT_TRUE(w.ok());
    const uint32_t num_items = 2, dim = 8;
    const uint32_t num_cand = bad == 0 ? 5u : 2u;  // 5 > num_items
    const uint32_t mode = bad == 0 ? 0u : 7u;      // modes are 0 and 1
    const uint32_t stride = 16, data_off = 92;
    ASSERT_TRUE(w->WriteScalar(num_items).ok());
    ASSERT_TRUE(w->WriteScalar(dim).ok());
    ASSERT_TRUE(w->WriteScalar(num_cand).ok());
    ASSERT_TRUE(w->WriteScalar(mode).ok());
    ASSERT_TRUE(w->WriteScalar(stride).ok());
    ASSERT_TRUE(w->WriteScalar(data_off).ok());
    ASSERT_TRUE(w->Commit().ok());
    MatchingEngine heap_engine, mmap_engine;
    expect_dataloss(heap_engine.LoadArena(p, false), "arena shape heap");
    expect_dataloss(mmap_engine.LoadArena(p, true), "arena shape mmap");
    std::remove(p.c_str());
  }
}

}  // namespace
}  // namespace sisg
