// End-to-end integration tests: the full matching pipeline on a small
// synthetic Taobao, checking the paper's qualitative claims hold end to end
// (Table III ordering on a reduced scale, cold start, distributed parity).

#include <gtest/gtest.h>

#include <cstdio>

#include "cf/item_cf.h"
#include "core/cold_start.h"
#include "core/pipeline.h"
#include "datagen/dataset.h"
#include "eval/ctr_simulator.h"
#include "eval/hitrate.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace sisg {
namespace {

class IntegrationFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetSpec spec;
    spec.name = "IntegrationSyn";
    spec.catalog.num_items = 2000;
    spec.catalog.num_leaf_categories = 10;
    spec.catalog.leaves_per_top = 4;
    spec.catalog.num_shops = 150;
    spec.catalog.num_brands = 80;
    spec.catalog.brands_per_leaf = 10;
    spec.users.num_user_types = 120;
    spec.num_train_sessions = 6000;
    spec.num_test_sessions = 800;
    auto ds = SyntheticDataset::Generate(spec);
    ASSERT_TRUE(ds.ok());
    dataset_ = new SyntheticDataset(std::move(ds).value());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static double Hr(SisgVariant variant, uint32_t k, uint32_t epochs,
                   bool distributed = false) {
    SisgConfig c;
    c.variant = variant;
    c.sgns.dim = 32;
    c.sgns.epochs = epochs;
    c.sgns.negatives = 5;
    c.distributed = distributed;
    c.dist.num_workers = 4;
    SisgPipeline pipeline(c);
    auto model = pipeline.Train(*dataset_);
    EXPECT_TRUE(model.ok()) << model.status().ToString();
    auto engine = model->BuildMatchingEngine();
    EXPECT_TRUE(engine.ok());
    const auto res = EvaluateHitRate(
        dataset_->test_sessions(),
        [&](uint32_t item, uint32_t kk) { return engine->Query(item, kk); }, {k});
    return res.hit_rate[0];
  }

  static SyntheticDataset* dataset_;
};

SyntheticDataset* IntegrationFixture::dataset_ = nullptr;

TEST_F(IntegrationFixture, SisgFudBeatsSisgFuBeatsSgns) {
  // HR@5 is below the saturation regime on this small corpus, where the
  // directional advantage is visible (Table III's ordering).
  const double sgns = Hr(SisgVariant::kSgns, 5, 16);
  const double fu = Hr(SisgVariant::kSisgFU, 5, 16);
  const double fud = Hr(SisgVariant::kSisgFUD, 5, 16);
  EXPECT_GT(sgns, 0.05);  // the baseline itself must work
  // Table III ordering, reduced scale: SI+UT helps, directionality helps more.
  EXPECT_GT(fu, sgns * 1.02) << "SI + user types should improve over SGNS";
  EXPECT_GT(fud, fu * 1.05) << "directional training should improve further";
}

TEST_F(IntegrationFixture, DistributedMatchesLocalQuality) {
  const double local = Hr(SisgVariant::kSisgFU, 20, 8, /*distributed=*/false);
  const double dist = Hr(SisgVariant::kSisgFU, 20, 8, /*distributed=*/true);
  EXPECT_GT(dist, 0.7 * local);
}

TEST_F(IntegrationFixture, SisgBeatsCfOnSimulatedCtr) {
  // Figure 3's claim at reduced scale: SISG-F-U-D candidates earn a higher
  // simulated CTR than tuned CF candidates under the same click model.
  SisgConfig c;
  c.variant = SisgVariant::kSisgFUD;
  c.sgns.dim = 32;
  c.sgns.epochs = 12;
  c.sgns.negatives = 5;
  SisgPipeline pipeline(c);
  auto model = pipeline.Train(*dataset_);
  ASSERT_TRUE(model.ok());
  auto engine = model->BuildMatchingEngine();
  ASSERT_TRUE(engine.ok());

  ItemCf cf;
  ItemCfOptions cfo;
  ASSERT_TRUE(
      cf.Build(dataset_->train_sessions(), dataset_->catalog().num_items(), cfo)
          .ok());

  CtrSimOptions opts;
  opts.num_days = 4;
  opts.impressions_per_day = 4000;
  const CtrSeries sisg_ctr = SimulateCtr(
      *dataset_,
      [&](uint32_t item, uint32_t k) { return engine->Query(item, k); }, opts);
  const CtrSeries cf_ctr = SimulateCtr(
      *dataset_, [&](uint32_t item, uint32_t k) { return cf.Query(item, k); },
      opts);
  EXPECT_GT(sisg_ctr.mean_ctr, 0.05);
  EXPECT_GT(cf_ctr.mean_ctr, 0.05);
  // On this small DENSE corpus CF's memorization is near its ceiling, so we
  // only require SISG to be competitive here; the paper's ~+10% win shows up
  // in the sparse regime exercised by bench_fig3_online_ctr.
  EXPECT_GT(sisg_ctr.mean_ctr, cf_ctr.mean_ctr * 0.7);
}

TEST_F(IntegrationFixture, ColdStartItemRecommendationsAreUsable) {
  SisgConfig c;
  c.variant = SisgVariant::kSisgFU;
  c.sgns.dim = 32;
  c.sgns.epochs = 8;
  c.sgns.negatives = 5;
  SisgPipeline pipeline(c);
  auto model = pipeline.Train(*dataset_);
  ASSERT_TRUE(model.ok());
  auto engine = model->BuildMatchingEngine();
  ASSERT_TRUE(engine.ok());

  // Treat trained items as "cold" and check Eq. 6 retrieval stays on
  // category far above the 10% chance rate.
  int same_leaf = 0, total = 0;
  for (uint32_t item = 0; item < 100; ++item) {
    std::vector<float> v;
    if (!InferColdItemVector(*model, dataset_->catalog().meta(item), &v).ok()) {
      continue;
    }
    for (const auto& r : engine->QueryVector(v.data(), 20)) {
      same_leaf += dataset_->catalog().meta(r.id).leaf_category ==
                   dataset_->catalog().meta(item).leaf_category;
      ++total;
    }
  }
  ASSERT_GT(total, 500);
  EXPECT_GT(static_cast<double>(same_leaf) / total, 0.6);
}

// The metrics artifact contract: a distributed training run plus serving
// queries with metrics enabled must produce a metrics.json containing the
// trainer throughput, the distributed sync histograms, and per-query
// serving percentiles. CI uploads the file this test writes as a workflow
// artifact.
TEST_F(IntegrationFixture, MetricsJsonArtifactHasRequiredKeys) {
  const bool was_enabled = obs::MetricsEnabled();
  obs::EnableMetrics(true);
  obs::MetricsRegistry::Global().Reset();

  SisgConfig c;
  c.variant = SisgVariant::kSisgFU;
  c.sgns.dim = 32;
  c.sgns.epochs = 2;
  c.sgns.negatives = 5;
  c.sgns.num_threads = 2;
  c.distributed = true;
  c.dist.num_workers = 4;
  SisgPipeline pipeline(c);
  auto model = pipeline.Train(*dataset_);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  auto engine = model->BuildMatchingEngine();
  ASSERT_TRUE(engine.ok());
  for (uint32_t item = 0; item < 200; item += 3) engine->Query(item, 10);

  // Written to the test CWD (build/tests in the CI tree) so the workflow
  // can pick it up by a fixed path.
  const std::string path = "metrics.json";
  ASSERT_TRUE(
      obs::WriteJsonFile(obs::MetricsRegistry::Global().Snapshot(), path).ok());
  obs::EnableMetrics(was_enabled);

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[1 << 14];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);

  auto doc = obs::ParseJson(text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();

  // Trainer throughput and progress.
  const obs::JsonValue* counters = doc->Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->Find("train.pairs"), nullptr);
  EXPECT_GT(counters->Find("train.pairs")->as_number(), 0.0);
  const obs::JsonValue* gauges = doc->Find("gauges");
  ASSERT_NE(gauges, nullptr);
  ASSERT_NE(gauges->Find("train.pairs_per_sec"), nullptr);
  EXPECT_GT(gauges->Find("train.pairs_per_sec")->as_number(), 0.0);

  // Distributed sync histograms and fault counters.
  const obs::JsonValue* hists = doc->Find("histograms");
  ASSERT_NE(hists, nullptr);
  for (const char* name :
       {"dist.sync_seconds", "dist.pairs_per_worker",
        "dist.bytes_per_worker"}) {
    const obs::JsonValue* h = hists->Find(name);
    ASSERT_NE(h, nullptr) << name << " missing from metrics.json";
    EXPECT_GT(h->Find("count")->as_number(), 0.0) << name;
  }
  ASSERT_NE(counters->Find("dist.sync_rounds"), nullptr);
  EXPECT_GT(counters->Find("dist.sync_rounds")->as_number(), 0.0);

  // Per-query serving percentiles.
  const obs::JsonValue* q = hists->Find("serve.query_seconds");
  ASSERT_NE(q, nullptr);
  EXPECT_GT(q->Find("count")->as_number(), 0.0);
  for (const char* pct : {"p50", "p90", "p95", "p99", "max", "mean", "sum"}) {
    ASSERT_NE(q->Find(pct), nullptr) << pct << " missing";
  }
  EXPECT_GE(q->Find("p99")->as_number(), q->Find("p50")->as_number());
}

}  // namespace
}  // namespace sisg
