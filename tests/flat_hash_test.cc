// Property-based model checks of the hot-path flat hash layer
// (common/flat_hash.h): seeded random interleavings of insert / erase /
// lookup / rehash / clear are replayed against a std::unordered_map/set
// reference model, with dedicated coverage for backward-shift deletion
// inside live probe chains and capacity-hint edge cases. The suite carries
// the chaos label so the ASan and TSan CI jobs replay it.

#include "common/flat_hash.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "prop/prop.h"

namespace sisg {
namespace {

// --------------------------- basic contracts ---------------------------

TEST(FlatHashMapTest, InsertFindEraseRoundTrip) {
  FlatHashMap<uint64_t, uint64_t> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.Find(42u), nullptr);
  EXPECT_FALSE(m.Erase(42u));

  m[42] = 7;
  ASSERT_NE(m.Find(42u), nullptr);
  EXPECT_EQ(*m.Find(42u), 7u);
  EXPECT_EQ(m.size(), 1u);

  m[42] += 3;
  EXPECT_EQ(*m.Find(42u), 10u);
  EXPECT_EQ(m.size(), 1u);

  EXPECT_TRUE(m.Erase(42u));
  EXPECT_EQ(m.Find(42u), nullptr);
  EXPECT_TRUE(m.empty());
}

TEST(FlatHashMapTest, TryEmplaceKeepsFirstValue) {
  FlatHashMap<uint32_t, uint32_t> m;
  auto [v1, ins1] = m.TryEmplace(5, 100);
  EXPECT_TRUE(ins1);
  EXPECT_EQ(*v1, 100u);
  auto [v2, ins2] = m.TryEmplace(5, 200);
  EXPECT_FALSE(ins2);
  EXPECT_EQ(*v2, 100u);
  m.InsertOrAssign(5, 300);
  EXPECT_EQ(*m.Find(5u), 300u);
}

TEST(FlatHashMapTest, NonTrivialValuesReleasedOnErase) {
  FlatHashMap<int, std::shared_ptr<int>> m;  // the server's conns shape
  auto p = std::make_shared<int>(9);
  std::weak_ptr<int> w = p;
  m.TryEmplace(3, std::move(p));
  ASSERT_NE(m.Find(3), nullptr);
  EXPECT_EQ(**m.Find(3), 9);
  EXPECT_TRUE(m.Erase(3));
  // Backward-shift erase must actually destroy the value, not just mark
  // the slot dead — a leaked shared_ptr would pin the Connection.
  EXPECT_TRUE(w.expired());
}

TEST(FlatHashMapTest, StringKeys) {
  FlatHashMap<std::string, uint32_t> m;
  m["usertype_7"] = 7;
  m["usertype_11"] = 11;
  ASSERT_NE(m.Find(std::string("usertype_7")), nullptr);
  EXPECT_EQ(*m.Find(std::string("usertype_7")), 7u);
  EXPECT_EQ(m.Find(std::string("usertype_8")), nullptr);
  EXPECT_TRUE(m.Erase(std::string("usertype_7")));
  EXPECT_EQ(m.Find(std::string("usertype_7")), nullptr);
  EXPECT_EQ(*m.Find(std::string("usertype_11")), 11u);
}

TEST(FlatHashMapTest, IterationVisitsEveryEntryOnce) {
  FlatHashMap<uint32_t, uint64_t> m;
  std::unordered_map<uint32_t, uint64_t> ref;
  for (uint32_t k = 0; k < 1000; ++k) {
    m[k * 3] = k;
    ref[k * 3] = k;
  }
  std::unordered_map<uint32_t, uint64_t> seen;
  for (const auto& [k, v] : m) {
    EXPECT_TRUE(seen.emplace(k, v).second) << "duplicate key " << k;
  }
  EXPECT_EQ(seen, ref);

  std::unordered_map<uint32_t, uint64_t> seen_fe;
  m.ForEach([&](uint32_t k, const uint64_t& v) { seen_fe.emplace(k, v); });
  EXPECT_EQ(seen_fe, ref);
}

TEST(FlatHashSetTest, InsertContainsErase) {
  FlatHashSet<uint32_t> s;
  EXPECT_TRUE(s.Insert(1));
  EXPECT_FALSE(s.Insert(1));
  EXPECT_TRUE(s.Contains(1));
  EXPECT_FALSE(s.Contains(2));
  EXPECT_TRUE(s.Erase(1));
  EXPECT_FALSE(s.Erase(1));
  EXPECT_FALSE(s.Contains(1));
  EXPECT_TRUE(s.empty());
}

// ------------------------ capacity-hint edges ------------------------

TEST(FlatHashMapTest, ReserveEdgeCases) {
  // Hint 0 and tiny hints must still produce a working table; a hint must
  // guarantee no rehash while inserting that many keys.
  for (size_t hint : {size_t{0}, size_t{1}, size_t{2}, size_t{15}, size_t{16},
                      size_t{17}, size_t{4096}}) {
    FlatHashMap<uint64_t, uint64_t> m;
    m.Reserve(hint);
    const size_t cap_before = m.capacity();
    for (uint64_t k = 0; k < hint; ++k) m[k] = k;
    if (hint > 0) {
      EXPECT_EQ(m.capacity(), cap_before) << "rehash despite hint " << hint;
    }
    for (uint64_t k = 0; k < hint; ++k) {
      ASSERT_NE(m.Find(k), nullptr) << "hint " << hint << " key " << k;
    }
    // Reserve never shrinks.
    m.Reserve(0);
    EXPECT_GE(m.capacity(), cap_before);
  }
}

TEST(FlatHashMapTest, GrowsPastReserveHint) {
  FlatHashMap<uint32_t, uint32_t> m;
  m.Reserve(8);
  for (uint32_t k = 0; k < 10000; ++k) m[k] = k + 1;
  EXPECT_EQ(m.size(), 10000u);
  for (uint32_t k = 0; k < 10000; ++k) {
    ASSERT_NE(m.Find(k), nullptr);
    EXPECT_EQ(*m.Find(k), k + 1);
  }
}

// ---------------------- backward-shift correctness ----------------------

TEST(FlatHashMapTest, EraseInsideProbeChainKeepsChainReachable) {
  // Build long probe chains by filling a small table near its load limit,
  // then erase from the middle of chains and verify every survivor is
  // still reachable (backward shift must re-pack, not tombstone).
  FlatHashMap<uint64_t, uint64_t> m;
  constexpr uint64_t kN = 96;  // capacity 128, load 0.75 — max chain stress
  m.Reserve(kN);
  for (uint64_t k = 0; k < kN; ++k) m[k] = k * 2;
  ASSERT_EQ(m.capacity(), 128u);

  // Erase every third key; after each erase, every remaining key must
  // still be found with its value, and erased keys must stay gone.
  std::unordered_map<uint64_t, uint64_t> ref;
  for (uint64_t k = 0; k < kN; ++k) ref[k] = k * 2;
  for (uint64_t k = 0; k < kN; k += 3) {
    ASSERT_TRUE(m.Erase(k));
    ref.erase(k);
    for (const auto& [rk, rv] : ref) {
      const uint64_t* v = m.Find(rk);
      ASSERT_NE(v, nullptr) << "lost key " << rk << " after erasing " << k;
      ASSERT_EQ(*v, rv);
    }
    ASSERT_EQ(m.Find(k), nullptr);
  }
  EXPECT_EQ(m.size(), ref.size());
}

TEST(FlatHashSetTest, HeavyChurnNeverDegrades) {
  // Tombstone-full tables are the classic open-addressing failure mode:
  // insert/erase cycles at a fixed population must stay correct (and the
  // backward shift keeps them fast — BENCH_hash.json tracks that side).
  FlatHashSet<uint64_t> s;
  std::unordered_set<uint64_t> ref;
  Rng rng(99);
  for (int round = 0; round < 20000; ++round) {
    const uint64_t k = rng.UniformU64(512);  // small key space -> collisions
    if (ref.count(k)) {
      EXPECT_TRUE(s.Erase(k)) << k;
      ref.erase(k);
    } else {
      EXPECT_TRUE(s.Insert(k)) << k;
      ref.insert(k);
    }
    ASSERT_EQ(s.size(), ref.size());
  }
  for (uint64_t k = 0; k < 512; ++k) {
    ASSERT_EQ(s.Contains(k), ref.count(k) > 0) << k;
  }
}

// ----------------------- randomized model check -----------------------
// rapidcheck-style: seeded op streams replayed against the std reference.
// Each seed drives a different interleaving of insert / erase / lookup /
// clear / reserve; the full table contents are compared at checkpoints.

void RunModelCheck(uint64_t seed, int ops, uint64_t key_space) {
  FlatHashMap<uint64_t, uint64_t> m;
  std::unordered_map<uint64_t, uint64_t> ref;
  Rng rng(seed);
  for (int i = 0; i < ops; ++i) {
    const uint64_t k = rng.UniformU64(key_space);
    switch (rng.UniformU64(10)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // 40% insert/overwrite
        const uint64_t v = rng.UniformU64(1 << 20);
        m[k] = v;
        ref[k] = v;
        break;
      }
      case 4: {  // accumulate (the counting idiom)
        m[k] += 1;
        ref[k] += 1;
        break;
      }
      case 5:
      case 6: {  // erase
        ASSERT_EQ(m.Erase(k), ref.erase(k) > 0) << "seed " << seed;
        break;
      }
      case 7: {  // try-emplace
        const uint64_t v = rng.UniformU64(1 << 20);
        const bool inserted = m.TryEmplace(k, v).second;
        ASSERT_EQ(inserted, ref.try_emplace(k, v).second) << "seed " << seed;
        break;
      }
      case 8: {  // rare clear / reserve
        if (rng.UniformU64(100) == 0) {
          m.Clear();
          ref.clear();
        } else if (rng.UniformU64(50) == 0) {
          m.Reserve(rng.UniformU64(4096));
        }
        break;
      }
      default: {  // lookup
        const uint64_t* v = m.Find(k);
        const auto it = ref.find(k);
        if (it == ref.end()) {
          ASSERT_EQ(v, nullptr) << "seed " << seed << " key " << k;
        } else {
          ASSERT_NE(v, nullptr) << "seed " << seed << " key " << k;
          ASSERT_EQ(*v, it->second) << "seed " << seed;
        }
        break;
      }
    }
    ASSERT_EQ(m.size(), ref.size()) << "seed " << seed << " op " << i;
  }
  // Final sweep: exact content equality in both directions.
  std::unordered_map<uint64_t, uint64_t> got;
  m.ForEach([&](uint64_t k, const uint64_t& v) {
    ASSERT_TRUE(got.emplace(k, v).second) << "duplicate " << k;
  });
  EXPECT_EQ(got, ref) << "seed " << seed;
}

TEST(FlatHashMapModel, RandomOpsMatchStdReferenceDenseKeys) {
  // Dense key space: constant collisions, long chains, heavy shift work.
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    RunModelCheck(seed, 20000, /*key_space=*/257);
  }
}

TEST(FlatHashMapModel, RandomOpsMatchStdReferenceSparseKeys) {
  // Sparse key space: mostly misses, rehash-driven growth.
  for (uint64_t seed = 100; seed <= 106; ++seed) {
    RunModelCheck(seed, 20000, /*key_space=*/1u << 30);
  }
}

TEST(FlatHashSetModel, RandomOpsMatchStdReference) {
  for (uint64_t seed = 7; seed <= 13; ++seed) {
    FlatHashSet<uint32_t> s;
    std::unordered_set<uint32_t> ref;
    Rng rng(seed);
    for (int i = 0; i < 20000; ++i) {
      const uint32_t k = static_cast<uint32_t>(rng.UniformU64(509));
      switch (rng.UniformU64(4)) {
        case 0:
        case 1:
          ASSERT_EQ(s.Insert(k), ref.insert(k).second) << "seed " << seed;
          break;
        case 2:
          ASSERT_EQ(s.Erase(k), ref.erase(k) > 0) << "seed " << seed;
          break;
        default:
          ASSERT_EQ(s.Contains(k), ref.count(k) > 0) << "seed " << seed;
      }
      ASSERT_EQ(s.size(), ref.size());
    }
    size_t n = 0;
    s.ForEach([&](uint32_t k) {
      ++n;
      EXPECT_TRUE(ref.count(k)) << k;
    });
    EXPECT_EQ(n, ref.size());
  }
}

// Read-only concurrent lookups are safe (the chaos/TSan replay of this
// suite is what makes that claim honest — any hidden mutation in the const
// path would be a reported race).
TEST(FlatHashMapModel, ConcurrentConstLookupsAreRaceFree) {
  FlatHashMap<uint64_t, uint64_t> m;
  for (uint64_t k = 0; k < 4096; ++k) m[k * 11] = k;
  const auto& cm = m;
  std::vector<std::thread> threads;
  std::atomic<uint64_t> total{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cm, &total, t] {
      Rng rng(1000 + t);
      uint64_t hits = 0;
      for (int i = 0; i < 50000; ++i) {
        hits += cm.Contains(rng.UniformU64(4096 * 12));
      }
      total.fetch_add(hits);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GT(total.load(), 0u);
}

// --------------------------- EpochVisitedSet ---------------------------

TEST(EpochVisitedSetTest, BasicMembershipAndCount) {
  EpochVisitedSet v;
  v.Reset(100);
  EXPECT_EQ(v.count(), 0u);
  EXPECT_TRUE(v.TestAndSet(5));
  EXPECT_FALSE(v.TestAndSet(5));
  EXPECT_TRUE(v.Test(5));
  EXPECT_FALSE(v.Test(6));
  EXPECT_TRUE(v.TestAndSet(99));
  EXPECT_EQ(v.count(), 2u);
}

TEST(EpochVisitedSetTest, ResetIsOhOneAndClearsMembership) {
  EpochVisitedSet v;
  v.Reset(1000);
  for (uint32_t i = 0; i < 1000; ++i) v.TestAndSet(i);
  EXPECT_EQ(v.count(), 1000u);
  v.Reset(1000);  // epoch bump, no fill
  EXPECT_EQ(v.count(), 0u);
  for (uint32_t i = 0; i < 1000; ++i) {
    EXPECT_FALSE(v.Test(i)) << i;
  }
  EXPECT_TRUE(v.TestAndSet(0));
}

TEST(EpochVisitedSetTest, UniverseCanGrowAcrossResets) {
  // The HNSW build path calls Reset with a growing node count.
  EpochVisitedSet v;
  v.Reset(4);
  v.TestAndSet(3);
  v.Reset(1024);
  EXPECT_EQ(v.universe(), 1024u);
  EXPECT_FALSE(v.Test(3));
  EXPECT_TRUE(v.TestAndSet(1023));
  v.Reset(16);  // smaller universe must not shrink the stamps
  EXPECT_EQ(v.universe(), 1024u);
  EXPECT_FALSE(v.Test(1023));
}

TEST(EpochVisitedSetTest, EpochWrapCannotAliasOldStamps) {
  EpochVisitedSet v;
  v.Reset(64);
  v.TestAndSet(7);
  // Fast-forward to the wrap: the next Reset overflows the epoch counter
  // and must refill, so the id-7 stamp from "4 billion queries ago" cannot
  // read as visited.
  v.JumpEpochForTest(UINT32_MAX);
  v.Reset(64);
  EXPECT_FALSE(v.Test(7));
  EXPECT_TRUE(v.TestAndSet(7));
  // And the epoch restarted above the 0 sentinel stamps.
  EXPECT_TRUE(v.Test(7));
  v.Reset(64);
  EXPECT_FALSE(v.Test(7));
}

// Property-based interleavings (dogfooding tests/prop): generated op
// sequences — marks, probes, resets with growing universes, and u32
// epoch-wrap jumps landing 0-3 resets before the wrap — must agree with a
// plain hash-set model at every step. The wrap op completes through the
// refill, so stale high-epoch stamps can never survive into later ops and
// the set model stays sound.
namespace epoch_prop {

struct Op {
  enum Kind { kMark, kProbe, kReset, kWrap } kind = kMark;
  uint32_t id = 0;        // kMark/kProbe
  size_t universe = 1;    // kReset
  uint32_t wrap_dist = 0;  // kWrap: resets between the jump and the wrap
  std::vector<uint32_t> wrap_marks;  // kWrap: ids marked between resets
};

prop::Gen<Op> OpGen() {
  using prop::Frequency;
  using prop::Gen;
  using prop::InRange;
  using prop::VectorOf;
  const auto mark = Gen<Op>([](Rng& rng) {
    Op op;
    op.kind = Op::kMark;
    op.id = static_cast<uint32_t>(InRange<uint32_t>(0, 299)(rng));
    return op;
  });
  const auto probe = Gen<Op>([](Rng& rng) {
    Op op;
    op.kind = Op::kProbe;
    op.id = static_cast<uint32_t>(InRange<uint32_t>(0, 299)(rng));
    return op;
  });
  const auto reset = Gen<Op>([](Rng& rng) {
    Op op;
    op.kind = Op::kReset;
    op.universe = InRange<size_t>(1, 300)(rng);
    return op;
  });
  const auto wrap = Gen<Op>([](Rng& rng) {
    Op op;
    op.kind = Op::kWrap;
    op.wrap_dist = InRange<uint32_t>(0, 3)(rng);
    op.wrap_marks = VectorOf<uint32_t>(0, 8, InRange<uint32_t>(0, 299))(rng);
    return op;
  });
  return Frequency<Op>({{6, mark}, {3, probe}, {2, reset}, {1, wrap}});
}

std::string ShowOps(const std::vector<Op>& ops) {
  std::string out = "[";
  for (size_t i = 0; i < ops.size(); ++i) {
    if (i) out += " ";
    switch (ops[i].kind) {
      case Op::kMark: out += "M" + std::to_string(ops[i].id); break;
      case Op::kProbe: out += "P" + std::to_string(ops[i].id); break;
      case Op::kReset: out += "R" + std::to_string(ops[i].universe); break;
      case Op::kWrap:
        out += "W" + std::to_string(ops[i].wrap_dist) + "x" +
               std::to_string(ops[i].wrap_marks.size());
        break;
    }
  }
  return out + "]";
}

TEST(EpochVisitedSetTest, PropGeneratedInterleavingsMatchModelAcrossWraps) {
  const prop::Result r = prop::ForAllSeeded<std::vector<Op>>(
      "epoch_visited_interleavings", 150, prop::VectorOf<Op>(1, 60, OpGen()),
      [](const std::vector<Op>& ops) -> std::string {
        EpochVisitedSet v;
        std::unordered_set<uint32_t> model;
        size_t universe = 300;
        v.Reset(universe);
        size_t step = 0;
        const auto mark = [&](uint32_t raw) -> std::string {
          const uint32_t id = raw % universe;
          const bool fresh = v.TestAndSet(id);
          if (fresh != model.insert(id).second) {
            return "step " + std::to_string(step) + ": TestAndSet(" +
                   std::to_string(id) + ") returned " +
                   (fresh ? "true" : "false") + ", model disagrees";
          }
          if (v.count() != model.size()) {
            return "step " + std::to_string(step) + ": count " +
                   std::to_string(v.count()) + " != model " +
                   std::to_string(model.size());
          }
          return "";
        };
        for (const Op& op : ops) {
          ++step;
          std::string verdict;
          switch (op.kind) {
            case Op::kMark:
              verdict = mark(op.id);
              break;
            case Op::kProbe: {
              const uint32_t id = op.id % universe;
              if (v.Test(id) != (model.count(id) != 0)) {
                verdict = "step " + std::to_string(step) + ": Test(" +
                          std::to_string(id) + ") disagrees with model";
              }
              break;
            }
            case Op::kReset:
              universe = std::max(universe, op.universe);
              v.Reset(universe);
              model.clear();
              if (v.count() != 0) verdict = "count nonzero after Reset";
              break;
            case Op::kWrap: {
              // Land wrap_dist resets short of the u32 wrap, then push
              // through it, interleaving marks so stamps written at epochs
              // near UINT32_MAX are exercised and must not alias afterward.
              // As in production, a jump is always followed by Reset before
              // any marks (the hook only moves the epoch counter).
              v.JumpEpochForTest(UINT32_MAX - op.wrap_dist);
              size_t mi = 0;
              for (uint32_t hop = 0; hop <= op.wrap_dist; ++hop) {
                v.Reset(universe);
                model.clear();
                for (; mi < op.wrap_marks.size() &&
                       mi * (op.wrap_dist + 1) < op.wrap_marks.size() * (hop + 1);
                     ++mi) {
                  verdict = mark(op.wrap_marks[mi]);
                  if (!verdict.empty()) break;
                }
                if (!verdict.empty()) break;
              }
              break;
            }
          }
          if (!verdict.empty()) return verdict;
        }
        return "";
      },
      prop::ShrinkVector<Op>(prop::NoShrink<Op>(), 1), ShowOps);
  EXPECT_TRUE(r.ok) << r.message;
}

}  // namespace epoch_prop

TEST(EpochVisitedSetTest, MatchesHashSetOnRandomTraversals) {
  EpochVisitedSet v;
  Rng rng(31);
  for (int round = 0; round < 50; ++round) {
    std::unordered_set<uint32_t> ref;
    v.Reset(512);
    for (int i = 0; i < 300; ++i) {
      const uint32_t id = static_cast<uint32_t>(rng.UniformU64(512));
      ASSERT_EQ(v.TestAndSet(id), ref.insert(id).second)
          << "round " << round << " id " << id;
    }
    ASSERT_EQ(v.count(), ref.size());
  }
}

}  // namespace
}  // namespace sisg
