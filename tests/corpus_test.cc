#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "corpus/corpus.h"
#include "corpus/enricher.h"
#include "corpus/subsample.h"
#include "corpus/token_space.h"
#include "corpus/vocabulary.h"
#include "datagen/dataset.h"

namespace sisg {
namespace {

class CorpusFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    DatasetSpec spec;
    spec.catalog.num_items = 400;
    spec.catalog.num_leaf_categories = 8;
    spec.catalog.num_shops = 40;
    spec.catalog.num_brands = 30;
    spec.users.num_user_types = 60;
    spec.num_train_sessions = 500;
    spec.num_test_sessions = 50;
    auto ds = SyntheticDataset::Generate(spec);
    ASSERT_TRUE(ds.ok());
    dataset_ = std::make_unique<SyntheticDataset>(std::move(ds).value());
    token_space_ =
        TokenSpace::Create(&dataset_->catalog(), &dataset_->users());
  }

  std::unique_ptr<SyntheticDataset> dataset_;
  TokenSpace token_space_;
};

// --------------------------- token space ---------------------------

TEST_F(CorpusFixture, TokenSpaceLayout) {
  const TokenSpace& ts = token_space_;
  EXPECT_EQ(ts.num_items(), 400u);
  EXPECT_EQ(ts.num_user_types(), 60u);
  // Items first.
  EXPECT_TRUE(ts.IsItem(0));
  EXPECT_TRUE(ts.IsItem(399));
  EXPECT_FALSE(ts.IsItem(400));
  EXPECT_EQ(ts.ClassOf(0), TokenClass::kItem);
  // SI blocks are disjoint and classed correctly.
  std::set<uint32_t> seen;
  for (ItemFeatureKind kind : AllItemFeatureKinds()) {
    const uint32_t tok = ts.SiToken(kind, 0);
    EXPECT_EQ(ts.ClassOf(tok), TokenClass::kItemSi);
    EXPECT_TRUE(seen.insert(tok).second);
    ItemFeatureKind k2;
    uint32_t v2;
    ts.DecodeSi(tok, &k2, &v2);
    EXPECT_EQ(k2, kind);
    EXPECT_EQ(v2, 0u);
  }
  // User types last.
  const uint32_t ut_tok = ts.UserTypeToken(5);
  EXPECT_EQ(ts.ClassOf(ut_tok), TokenClass::kUserType);
  EXPECT_EQ(ts.TokenToUserType(ut_tok), 5u);
  EXPECT_EQ(ts.UserTypeToken(ts.num_user_types() - 1), ts.num_tokens() - 1);
}

TEST_F(CorpusFixture, TokenStrings) {
  const TokenSpace& ts = token_space_;
  EXPECT_EQ(ts.TokenString(7), "item_7");
  const uint32_t brand_tok = ts.SiToken(ItemFeatureKind::kBrand, 12);
  EXPECT_EQ(ts.TokenString(brand_tok), "brand_12");
  const std::string ut = ts.TokenString(ts.UserTypeToken(0));
  EXPECT_EQ(ut.rfind("usertype_", 0), 0u);
}

// --------------------------- enricher ---------------------------

TEST_F(CorpusFixture, EnrichMatchesEq4) {
  Session s;
  s.user_type = 3;
  s.items = {10, 20};
  EnrichOptions opts;  // SI + UT
  SequenceEnricher enricher(&token_space_, &dataset_->catalog(), opts);
  const auto seq = enricher.Enrich(s);
  // v1, 8 SI, v2, 8 SI, UT = 19 tokens.
  ASSERT_EQ(seq.size(), 19u);
  EXPECT_EQ(seq[0], 10u);
  EXPECT_EQ(seq[9], 20u);
  EXPECT_EQ(seq[18], token_space_.UserTypeToken(3));
  // SI tokens follow their item in kind order.
  const ItemMeta& m = dataset_->catalog().meta(10);
  int i = 1;
  for (ItemFeatureKind kind : AllItemFeatureKinds()) {
    EXPECT_EQ(seq[i++], token_space_.SiToken(kind, m.Feature(kind)));
  }
}

TEST_F(CorpusFixture, EnrichVariants) {
  Session s;
  s.user_type = 1;
  s.items = {5, 6, 7};
  SequenceEnricher plain(&token_space_, &dataset_->catalog(),
                         {.include_item_si = false, .include_user_type = false});
  EXPECT_EQ(plain.Enrich(s), (std::vector<uint32_t>{5, 6, 7}));

  SequenceEnricher ut_only(&token_space_, &dataset_->catalog(),
                           {.include_item_si = false, .include_user_type = true});
  const auto seq = ut_only.Enrich(s);
  ASSERT_EQ(seq.size(), 4u);
  EXPECT_EQ(seq[3], token_space_.UserTypeToken(1));

  SequenceEnricher si_only(&token_space_, &dataset_->catalog(),
                           {.include_item_si = true, .include_user_type = false});
  EXPECT_EQ(si_only.Enrich(s).size(), 27u);
  EXPECT_EQ(si_only.TokensPerItem(), 9u);
}

TEST_F(CorpusFixture, EnricherDeterministicAndReusesBuffer) {
  SequenceEnricher enricher(&token_space_, &dataset_->catalog(), {});
  Session s;
  s.user_type = 2;
  s.items = {1, 2, 3};
  std::vector<uint32_t> buf = {99, 98, 97};  // stale content must be cleared
  enricher.Enrich(s, &buf);
  EXPECT_EQ(buf, enricher.Enrich(s));
  EXPECT_EQ(buf.size(), 3u * 9 + 1);
}

// --------------------------- vocabulary ---------------------------

TEST_F(CorpusFixture, VocabularyCountsAndOrder) {
  std::vector<std::vector<uint32_t>> seqs = {{1, 2, 2, 3, 3, 3}, {3, 2, 3}};
  Vocabulary v;
  ASSERT_TRUE(v.Build(seqs, token_space_.num_tokens(), 1, token_space_).ok());
  EXPECT_EQ(v.size(), 3u);
  // Sorted by descending frequency: 3 (x5), 2 (x3), 1 (x1).
  EXPECT_EQ(v.ToToken(0), 3u);
  EXPECT_EQ(v.Frequency(0), 5u);
  EXPECT_EQ(v.ToToken(1), 2u);
  EXPECT_EQ(v.ToVocab(1), 2);
  EXPECT_EQ(v.ToVocab(999), -1);
  EXPECT_EQ(v.total_count(), 9u);
  EXPECT_EQ(v.ClassOf(0), TokenClass::kItem);
}

TEST_F(CorpusFixture, VocabularyMinCount) {
  std::vector<std::vector<uint32_t>> seqs = {{1, 1, 1, 2, 2, 3}};
  Vocabulary v;
  ASSERT_TRUE(v.Build(seqs, token_space_.num_tokens(), 2, token_space_).ok());
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.ToVocab(3), -1);
  // min_count that kills everything is an error.
  Vocabulary v2;
  EXPECT_FALSE(v2.Build(seqs, token_space_.num_tokens(), 100, token_space_).ok());
  // min_count 0 rejected.
  EXPECT_FALSE(v2.Build(seqs, token_space_.num_tokens(), 0, token_space_).ok());
}

TEST_F(CorpusFixture, VocabularyRejectsOutOfRangeToken) {
  std::vector<std::vector<uint32_t>> seqs = {{token_space_.num_tokens() + 5}};
  Vocabulary v;
  EXPECT_EQ(v.Build(seqs, token_space_.num_tokens(), 1, token_space_).code(),
            StatusCode::kOutOfRange);
}

TEST_F(CorpusFixture, NoiseDistributionFollowsPower) {
  std::vector<std::vector<uint32_t>> seqs;
  for (int i = 0; i < 160; ++i) seqs.push_back({1});
  for (int i = 0; i < 10; ++i) seqs.push_back({2});
  Vocabulary v;
  ASSERT_TRUE(v.Build(seqs, token_space_.num_tokens(), 1, token_space_).ok());
  auto noise = v.BuildNoise(0.75);
  ASSERT_TRUE(noise.ok());
  // freq ratio 16 -> prob ratio 16^0.75 = 8.
  EXPECT_NEAR(noise->Probability(0) / noise->Probability(1), 8.0, 0.01);

  auto sub = v.BuildNoiseOver({1}, 0.75);
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->size(), 1u);
  EXPECT_FALSE(v.BuildNoiseOver({}, 0.75).ok());
}

TEST_F(CorpusFixture, VocabularySaveLoadRoundTrip) {
  CorpusOptions opts;
  Corpus corpus;
  ASSERT_TRUE(corpus.Build(dataset_->train_sessions(), token_space_,
                           dataset_->catalog(), opts)
                  .ok());
  const Vocabulary& v = corpus.vocab();
  const std::string path = ::testing::TempDir() + "/vocab.bin";
  ASSERT_TRUE(v.Save(path).ok());
  auto loaded = Vocabulary::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), v.size());
  EXPECT_EQ(loaded->total_count(), v.total_count());
  for (uint32_t i = 0; i < v.size(); i += 13) {
    EXPECT_EQ(loaded->ToToken(i), v.ToToken(i));
    EXPECT_EQ(loaded->Frequency(i), v.Frequency(i));
    EXPECT_EQ(loaded->ClassOf(i), v.ClassOf(i));
  }
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(loaded->CountOfClass(static_cast<TokenClass>(c)),
              v.CountOfClass(static_cast<TokenClass>(c)));
  }
  std::remove(path.c_str());
}

TEST_F(CorpusFixture, VocabularyLoadRejectsCorruption) {
  const std::string path = ::testing::TempDir() + "/vocab_bad.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("not a vocab file at all", f);
  std::fclose(f);
  EXPECT_EQ(Vocabulary::Load(path).status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(Vocabulary::Load("/nonexistent/vocab").status().code(),
            StatusCode::kIOError);
  std::remove(path.c_str());
}

// --------------------------- subsample ---------------------------

TEST(SubsampleTest, KeepProbabilityMonotoneInFrequency) {
  const double t = 1e-4;
  double prev = 1.1;
  for (double f : {1e-5, 1e-4, 1e-3, 1e-2, 1e-1}) {
    const double p = KeepProbability(f, t);
    EXPECT_LE(p, prev);
    EXPECT_GT(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
  EXPECT_DOUBLE_EQ(KeepProbability(1e-6, t), 1.0);  // below threshold: keep
  EXPECT_DOUBLE_EQ(KeepProbability(0.0, t), 1.0);
}

TEST_F(CorpusFixture, SubsamplerUsesPerClassThresholds) {
  CorpusOptions opts;
  Corpus corpus;
  ASSERT_TRUE(corpus.Build(dataset_->train_sessions(), token_space_,
                           dataset_->catalog(), opts)
                  .ok());
  SubsampleConfig config;
  config.item_threshold = 1.0;  // never drop items
  config.si_threshold = 1e-9;   // nuke SI
  Subsampler sub;
  sub.Build(corpus.vocab(), config);
  double min_item = 1.0, max_si = 0.0;
  for (uint32_t v = 0; v < corpus.vocab().size(); ++v) {
    if (corpus.vocab().ClassOf(v) == TokenClass::kItem) {
      min_item = std::min(min_item, static_cast<double>(sub.Keep(v)));
    } else if (corpus.vocab().ClassOf(v) == TokenClass::kItemSi) {
      max_si = std::max(max_si, static_cast<double>(sub.Keep(v)));
    }
  }
  EXPECT_DOUBLE_EQ(min_item, 1.0);
  EXPECT_LT(max_si, 0.2);
}

TEST(SubsampleTest, AggressivePresetIsMoreAggressive) {
  const SubsampleConfig normal;
  const SubsampleConfig aggressive = SubsampleConfig::Aggressive();
  EXPECT_LT(aggressive.si_threshold, normal.si_threshold);
}

// --------------------------- corpus ---------------------------

TEST_F(CorpusFixture, CorpusBuildFiltersAndEncodes) {
  CorpusOptions opts;
  opts.min_count = 2;
  Corpus corpus;
  ASSERT_TRUE(corpus.Build(dataset_->train_sessions(), token_space_,
                           dataset_->catalog(), opts)
                  .ok());
  EXPECT_GT(corpus.vocab().size(), 0u);
  EXPECT_GT(corpus.num_tokens(), 0u);
  uint64_t tokens = 0;
  for (uint64_t s = 0; s < corpus.num_sequences(); ++s) {
    const auto seq = corpus.packed().seq(s);
    EXPECT_GE(seq.size(), 2u);
    tokens += seq.size();
    for (uint32_t v : seq) ASSERT_LT(v, corpus.vocab().size());
  }
  EXPECT_EQ(tokens, corpus.num_tokens());
}

TEST_F(CorpusFixture, CorpusRejectsEmptyInput) {
  Corpus corpus;
  EXPECT_FALSE(corpus
                   .Build({}, token_space_, dataset_->catalog(), CorpusOptions{})
                   .ok());
}

TEST_F(CorpusFixture, CorpusVariantsChangeVocabComposition) {
  Corpus plain, enriched;
  CorpusOptions po;
  po.enrich.include_item_si = false;
  po.enrich.include_user_type = false;
  ASSERT_TRUE(plain
                  .Build(dataset_->train_sessions(), token_space_,
                         dataset_->catalog(), po)
                  .ok());
  ASSERT_TRUE(enriched
                  .Build(dataset_->train_sessions(), token_space_,
                         dataset_->catalog(), CorpusOptions{})
                  .ok());
  EXPECT_EQ(plain.vocab().CountOfClass(TokenClass::kItemSi), 0u);
  EXPECT_EQ(plain.vocab().CountOfClass(TokenClass::kUserType), 0u);
  EXPECT_GT(enriched.vocab().CountOfClass(TokenClass::kItemSi), 0u);
  EXPECT_GT(enriched.vocab().CountOfClass(TokenClass::kUserType), 0u);
  EXPECT_GT(enriched.num_tokens(), plain.num_tokens());
}

}  // namespace
}  // namespace sisg
