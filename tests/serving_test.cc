// Tests of the production-serving features: the precomputed candidate
// table, word2vec text export, and daily-retrain warm start.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/quant.h"
#include "core/candidate_table.h"
#include "core/ivf_index.h"
#include "core/matching_engine.h"
#include "core/pipeline.h"
#include "corpus/corpus.h"
#include "datagen/dataset.h"
#include "eval/hitrate.h"
#include "obs/metrics.h"
#include "sgns/trainer.h"
#include "sgns/warm_start.h"

namespace sisg {
namespace {

class ServingFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    DatasetSpec spec;
    spec.catalog.num_items = 400;
    spec.catalog.num_leaf_categories = 8;
    spec.catalog.num_shops = 30;
    spec.catalog.num_brands = 24;
    spec.users.num_user_types = 50;
    spec.num_train_sessions = 1500;
    spec.num_test_sessions = 200;
    auto ds = SyntheticDataset::Generate(spec);
    ASSERT_TRUE(ds.ok());
    dataset_ = std::make_unique<SyntheticDataset>(std::move(ds).value());

    SisgConfig config;
    config.variant = SisgVariant::kSisgFU;
    config.sgns.dim = 16;
    config.sgns.epochs = 3;
    config.sgns.negatives = 5;
    SisgPipeline pipeline(config);
    auto model = pipeline.Train(*dataset_);
    ASSERT_TRUE(model.ok());
    model_ = std::make_unique<SisgModel>(std::move(model).value());
    auto engine = model_->BuildMatchingEngine();
    ASSERT_TRUE(engine.ok());
    engine_ = std::make_unique<MatchingEngine>(std::move(engine).value());
  }

  std::unique_ptr<SyntheticDataset> dataset_;
  std::unique_ptr<SisgModel> model_;
  std::unique_ptr<MatchingEngine> engine_;
};

// --------------------------- candidate table ---------------------------

TEST_F(ServingFixture, CandidateTableMatchesEngineQueries) {
  CandidateTable table;
  ASSERT_TRUE(table.Build(*engine_, 10).ok());
  EXPECT_EQ(table.num_items(), engine_->num_items());
  for (uint32_t item = 0; item < engine_->num_items(); item += 37) {
    const auto direct = engine_->Query(item, 10);
    const auto& cached = table.Get(item);
    ASSERT_EQ(direct.size(), cached.size()) << "item " << item;
    for (size_t i = 0; i < direct.size(); ++i) {
      EXPECT_EQ(direct[i].id, cached[i].id);
      EXPECT_FLOAT_EQ(direct[i].score, cached[i].score);
    }
  }
  EXPECT_TRUE(table.Get(99999).empty());
}

TEST_F(ServingFixture, CandidateTableParallelBuildIdentical) {
  CandidateTable serial, parallel;
  ASSERT_TRUE(serial.Build(*engine_, 5, 1).ok());
  ASSERT_TRUE(parallel.Build(*engine_, 5, 4).ok());
  for (uint32_t item = 0; item < engine_->num_items(); ++item) {
    ASSERT_EQ(serial.Get(item).size(), parallel.Get(item).size());
    for (size_t i = 0; i < serial.Get(item).size(); ++i) {
      EXPECT_EQ(serial.Get(item)[i].id, parallel.Get(item)[i].id);
    }
  }
}

TEST_F(ServingFixture, CandidateTableRejectsBadArgs) {
  CandidateTable table;
  EXPECT_FALSE(table.Build(*engine_, 0).ok());
  MatchingEngine empty;
  EXPECT_FALSE(table.Build(empty, 5).ok());
}

TEST_F(ServingFixture, CandidateTableSaveText) {
  CandidateTable table;
  ASSERT_TRUE(table.Build(*engine_, 3).ok());
  const std::string path = ::testing::TempDir() + "/candidates.tsv";
  ASSERT_TRUE(table.SaveText(path).ok());
  std::ifstream in(path);
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_NE(line.find('\t'), std::string::npos);
  }
  EXPECT_GT(lines, 100u);
  std::remove(path.c_str());
  EXPECT_FALSE(table.SaveText("/nonexistent/dir/x").ok());
}

// --------------------------- text export ---------------------------

TEST_F(ServingFixture, ExportTextFormat) {
  const std::string path = ::testing::TempDir() + "/vectors.txt";
  ASSERT_TRUE(model_->ExportText(path).ok());
  std::ifstream in(path);
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header, std::to_string(model_->vocab().size()) + " " +
                        std::to_string(model_->dim()));
  std::string line;
  size_t lines = 0;
  bool saw_item = false, saw_si = false, saw_ut = false;
  while (std::getline(in, line)) {
    ++lines;
    saw_item |= line.rfind("item_", 0) == 0;
    saw_si |= line.rfind("brand_", 0) == 0 || line.rfind("leaf_category_", 0) == 0;
    saw_ut |= line.rfind("usertype_", 0) == 0;
  }
  EXPECT_EQ(lines, model_->vocab().size());
  EXPECT_TRUE(saw_item);
  EXPECT_TRUE(saw_si);
  EXPECT_TRUE(saw_ut);
  std::remove(path.c_str());
}

TEST_F(ServingFixture, ExportTextOutputVectorsDiffer) {
  const std::string in_path = ::testing::TempDir() + "/in.txt";
  const std::string out_path = ::testing::TempDir() + "/out.txt";
  ASSERT_TRUE(model_->ExportText(in_path, true).ok());
  ASSERT_TRUE(model_->ExportText(out_path, false).ok());
  std::ifstream a(in_path), b(out_path);
  std::string la, lb;
  std::getline(a, la);
  std::getline(b, lb);
  EXPECT_EQ(la, lb);  // same header
  std::getline(a, la);
  std::getline(b, lb);
  EXPECT_NE(la, lb);  // different vectors for the hottest token
  std::remove(in_path.c_str());
  std::remove(out_path.c_str());
}

// --------------------------- warm start ---------------------------

class WarmStartFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    DatasetSpec spec;
    spec.catalog.num_items = 400;
    spec.catalog.num_leaf_categories = 8;
    spec.users.num_user_types = 50;
    spec.num_train_sessions = 2000;
    spec.num_test_sessions = 300;
    auto ds = SyntheticDataset::Generate(spec);
    ASSERT_TRUE(ds.ok());
    dataset_ = std::make_unique<SyntheticDataset>(std::move(ds).value());
    token_space_ = TokenSpace::Create(&dataset_->catalog(), &dataset_->users());

    // "Yesterday": first half of the sessions. "Today": all sessions.
    std::vector<Session> yesterday(dataset_->train_sessions().begin(),
                                   dataset_->train_sessions().begin() + 1000);
    CorpusOptions copts;
    ASSERT_TRUE(old_corpus_
                    .Build(yesterday, token_space_, dataset_->catalog(), copts)
                    .ok());
    ASSERT_TRUE(new_corpus_
                    .Build(dataset_->train_sessions(), token_space_,
                           dataset_->catalog(), copts)
                    .ok());
  }

  SgnsOptions Opts(uint32_t epochs) const {
    SgnsOptions o;
    o.dim = 24;
    o.epochs = epochs;
    o.negatives = 5;
    return o;
  }

  std::unique_ptr<SyntheticDataset> dataset_;
  TokenSpace token_space_;
  Corpus old_corpus_;
  Corpus new_corpus_;
};

TEST_F(WarmStartFixture, CopiesSharedRows) {
  EmbeddingModel old_model;
  ASSERT_TRUE(SgnsTrainer(Opts(2)).Train(old_corpus_, &old_model).ok());
  EmbeddingModel new_model;
  ASSERT_TRUE(new_model.Init(new_corpus_.vocab().size(), 24, 1).ok());
  ASSERT_TRUE(WarmStartFrom(old_corpus_.vocab(), old_model, new_corpus_.vocab(),
                            &new_model)
                  .ok());
  // Every token in both vocabs must carry yesterday's vector.
  int shared = 0;
  for (uint32_t v = 0; v < new_corpus_.vocab().size(); ++v) {
    const int32_t ov = old_corpus_.vocab().ToVocab(new_corpus_.vocab().ToToken(v));
    if (ov < 0) continue;
    ++shared;
    for (uint32_t d = 0; d < 24; ++d) {
      ASSERT_EQ(new_model.Input(v)[d],
                old_model.Input(static_cast<uint32_t>(ov))[d]);
    }
  }
  EXPECT_GT(shared, 100);
}

TEST_F(WarmStartFixture, RejectsShapeMismatches) {
  EmbeddingModel old_model;
  ASSERT_TRUE(old_model.Init(old_corpus_.vocab().size(), 24, 1).ok());
  EmbeddingModel wrong_rows;
  ASSERT_TRUE(wrong_rows.Init(3, 24, 1).ok());
  EXPECT_FALSE(WarmStartFrom(old_corpus_.vocab(), old_model, new_corpus_.vocab(),
                             &wrong_rows)
                   .ok());
  EmbeddingModel wrong_dim;
  ASSERT_TRUE(wrong_dim.Init(new_corpus_.vocab().size(), 8, 1).ok());
  EXPECT_FALSE(WarmStartFrom(old_corpus_.vocab(), old_model, new_corpus_.vocab(),
                             &wrong_dim)
                   .ok());
  EXPECT_FALSE(WarmStartFrom(old_corpus_.vocab(), old_model, new_corpus_.vocab(),
                             nullptr)
                   .ok());
}

TEST_F(WarmStartFixture, WarmStartTrainingBeatsShortColdRun) {
  // Yesterday's full training.
  EmbeddingModel old_model;
  ASSERT_TRUE(SgnsTrainer(Opts(6)).Train(old_corpus_, &old_model).ok());

  // Today, short run: warm vs cold.
  SgnsOptions warm_opts = Opts(1);
  warm_opts.warm_start = true;
  EmbeddingModel warm;
  ASSERT_TRUE(warm.Init(new_corpus_.vocab().size(), 24, 1).ok());
  ASSERT_TRUE(WarmStartFrom(old_corpus_.vocab(), old_model, new_corpus_.vocab(),
                            &warm)
                  .ok());
  ASSERT_TRUE(SgnsTrainer(warm_opts).Train(new_corpus_, &warm).ok());

  EmbeddingModel cold;
  ASSERT_TRUE(SgnsTrainer(Opts(1)).Train(new_corpus_, &cold).ok());

  SisgConfig cfg;
  cfg.variant = SisgVariant::kSisgFU;
  auto hr20 = [&](EmbeddingModel&& m) {
    SisgModel model(cfg, token_space_, new_corpus_.vocab(), std::move(m));
    auto engine = model.BuildMatchingEngine();
    EXPECT_TRUE(engine.ok());
    return EvaluateHitRate(
               dataset_->test_sessions(),
               [&](uint32_t item, uint32_t k) { return engine->Query(item, k); },
               {20})
        .hit_rate[0];
  };
  const double hr_warm = hr20(std::move(warm));
  const double hr_cold = hr20(std::move(cold));
  EXPECT_GT(hr_warm, hr_cold) << "warm start should help a short daily run";
}

TEST_F(WarmStartFixture, TrainerWarmStartValidatesShape) {
  SgnsOptions opts = Opts(1);
  opts.warm_start = true;
  EmbeddingModel unshaped;
  EXPECT_EQ(SgnsTrainer(opts).Train(new_corpus_, &unshaped).code(),
            StatusCode::kFailedPrecondition);
}

// --------------------------- graceful degradation ---------------------------

/// ServingFixture plus metrics enabled for the duration of each test, so
/// the serve.* instrumentation can be asserted on directly.
class DegradationFixture : public ServingFixture {
 protected:
  void SetUp() override {
    ServingFixture::SetUp();
    was_enabled_ = obs::MetricsEnabled();
    obs::EnableMetrics(true);
    obs::MetricsRegistry::Global().Reset();
  }
  void TearDown() override {
    obs::EnableMetrics(was_enabled_);
    obs::MetricsRegistry::Global().Reset();
  }
  static double DegradedGauge() {
    return obs::MetricsRegistry::Global().gauge("serve.degraded")->Value();
  }
  bool was_enabled_ = false;
};

// A corrupt IVF artifact must fail the checksum, flip the degraded gauge,
// keep serving through the brute-force scan (results identical to a
// never-accelerated engine), and keep the latency histogram recording.
TEST_F(DegradationFixture, CorruptIvfArtifactDegradesToBruteForce) {
  // Build + persist a valid index first.
  auto good = model_->BuildMatchingEngine();
  ASSERT_TRUE(good.ok());
  IvfOptions opts;
  opts.kmeans.num_clusters = 16;
  opts.nprobe = 4;
  ASSERT_TRUE(good->EnableIvf(opts).ok());
  EXPECT_FALSE(good->degraded());
  EXPECT_EQ(DegradedGauge(), 0.0);
  const std::string path = ::testing::TempDir() + "/degradation.ivf";
  ASSERT_TRUE(good->SaveIvf(path).ok());

  // Flip one payload byte; the artifact CRC must catch it.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(100);
    char b = 0;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x40);
    f.seekp(100);
    f.write(&b, 1);
  }

  auto victim = model_->BuildMatchingEngine();
  ASSERT_TRUE(victim.ok());
  const Status st = victim->EnableIvfFromFile(path);
  EXPECT_EQ(st.code(), StatusCode::kDataLoss) << st.ToString();
  EXPECT_TRUE(victim->degraded());
  EXPECT_EQ(victim->ann_backend(), AnnBackend::kBruteForce);
  EXPECT_EQ(DegradedGauge(), 1.0);

  // Degraded serving answers every query bit-identically to an engine that
  // never attempted acceleration.
  auto brute = model_->BuildMatchingEngine();
  ASSERT_TRUE(brute.ok());
  const uint64_t latency_before = obs::MetricsRegistry::Global()
                                      .histogram("serve.query_seconds")
                                      ->Count();
  size_t compared = 0;
  for (uint32_t item = 0; item < victim->num_items(); item += 29) {
    const auto got = victim->Query(item, 10);
    const auto want = brute->Query(item, 10);
    ASSERT_EQ(got.size(), want.size()) << "item " << item;
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].id, want[i].id) << "item " << item << " rank " << i;
      ASSERT_EQ(got[i].score, want[i].score) << "item " << item;
    }
    compared += got.size();
  }
  ASSERT_GT(compared, 0u);
  EXPECT_GT(obs::MetricsRegistry::Global()
                .histogram("serve.query_seconds")
                ->Count(),
            latency_before)
      << "latency histogram stopped recording after degradation";
  EXPECT_GT(
      obs::MetricsRegistry::Global().counter("serve.queries")->Value(), 0u);

  // Recovery: replacing the corrupt artifact with a valid one clears the
  // degraded state and the gauge.
  ASSERT_TRUE(good->SaveIvf(path).ok());
  ASSERT_TRUE(victim->EnableIvfFromFile(path).ok());
  EXPECT_FALSE(victim->degraded());
  EXPECT_EQ(victim->ann_backend(), AnnBackend::kIvf);
  EXPECT_EQ(DegradedGauge(), 0.0);
  std::remove(path.c_str());
}

// A shape-mismatched (but uncorrupted) artifact is FailedPrecondition and
// also degrades; queries keep flowing.
TEST_F(DegradationFixture, MismatchedIvfArtifactDegrades) {
  // An index over tiny random data can never match this engine's shape.
  std::vector<float> data(32 * 4, 0.25f);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = 0.1f * static_cast<float>(i % 13) - 0.5f;
  }
  IvfIndex small;
  IvfOptions iopts;
  iopts.kmeans.num_clusters = 4;
  ASSERT_TRUE(small.Build(data.data(), 32, 4, iopts).ok());
  const std::string path = ::testing::TempDir() + "/mismatch.ivf";
  ASSERT_TRUE(small.Save(path).ok());

  auto victim = model_->BuildMatchingEngine();
  ASSERT_TRUE(victim.ok());
  EXPECT_EQ(victim->EnableIvfFromFile(path).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(victim->degraded());
  EXPECT_EQ(DegradedGauge(), 1.0);
  EXPECT_FALSE(victim->Query(0, 5).empty() &&
               victim->Query(1, 5).empty() && victim->Query(2, 5).empty());
  std::remove(path.c_str());
}

// The quantized scan honors the same contract as the ANN backends: a corrupt
// int8 arena artifact fails its CRC as DataLoss, flips the degraded gauge,
// and the engine keeps answering on the fp32 scan bit-identically to a
// never-quantized engine; a pristine replacement clears the state.
TEST_F(DegradationFixture, CorruptInt8ArtifactDegradesToFp32) {
  auto good = model_->BuildMatchingEngine();
  ASSERT_TRUE(good.ok());
  ASSERT_TRUE(good->EnableInt8().ok());
  EXPECT_EQ(good->quant_mode(), QuantMode::kInt8);
  const std::string path = ::testing::TempDir() + "/degradation.qarena";
  ASSERT_TRUE(good->SaveInt8(path).ok());

  // Flip one payload byte; the artifact CRC must catch it.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(200);
    char b = 0;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x04);
    f.seekp(200);
    f.write(&b, 1);
  }

  auto victim = model_->BuildMatchingEngine();
  ASSERT_TRUE(victim.ok());
  for (const bool use_mmap : {false, true}) {
    const Status st = victim->EnableInt8FromFile(path, use_mmap);
    EXPECT_EQ(st.code(), StatusCode::kDataLoss)
        << "mmap=" << use_mmap << ": " << st.ToString();
    EXPECT_TRUE(victim->degraded()) << "mmap=" << use_mmap;
    EXPECT_EQ(victim->quant_mode(), QuantMode::kFp32) << "mmap=" << use_mmap;
    EXPECT_EQ(DegradedGauge(), 1.0) << "mmap=" << use_mmap;
  }

  // Degraded serving is the fp32 scan, bit-identical to an engine that
  // never attempted quantization.
  auto brute = model_->BuildMatchingEngine();
  ASSERT_TRUE(brute.ok());
  size_t compared = 0;
  for (uint32_t item = 0; item < victim->num_items(); item += 29) {
    const auto got = victim->Query(item, 10);
    const auto want = brute->Query(item, 10);
    ASSERT_EQ(got.size(), want.size()) << "item " << item;
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].id, want[i].id) << "item " << item << " rank " << i;
      ASSERT_EQ(got[i].score, want[i].score) << "item " << item;
    }
    compared += got.size();
  }
  ASSERT_GT(compared, 0u);

  // Recovery: a pristine artifact re-enables the int8 scan, clears the
  // gauge, and the quantized-scan instrumentation starts moving.
  ASSERT_TRUE(good->SaveInt8(path).ok());
  ASSERT_TRUE(victim->EnableInt8FromFile(path, /*use_mmap=*/true).ok());
  EXPECT_FALSE(victim->degraded());
  EXPECT_EQ(victim->quant_mode(), QuantMode::kInt8);
  EXPECT_EQ(DegradedGauge(), 0.0);
  const uint64_t rerank_before =
      obs::MetricsRegistry::Global().counter("serve.rerank_rows")->Value();
  EXPECT_FALSE(victim->Query(1, 10).empty());
  EXPECT_GT(obs::MetricsRegistry::Global().counter("serve.rerank_rows")->Value(),
            rerank_before);
  EXPECT_GT(
      obs::MetricsRegistry::Global().counter("serve.bytes_scanned")->Value(),
      0u);
  std::remove(path.c_str());
}

// A shape-mismatched int8 arena (valid artifact, wrong engine) degrades as
// FailedPrecondition and fp32 serving continues.
TEST_F(DegradationFixture, MismatchedInt8ArtifactDegrades) {
  std::vector<float> data(32 * 4);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = 0.1f * static_cast<float>(i % 13) - 0.5f;
  }
  Int8Arena small;
  ASSERT_TRUE(small.BuildFromRows(data.data(), 32, 4, 4).ok());
  const std::string path = ::testing::TempDir() + "/mismatch.qarena";
  ASSERT_TRUE(small.Save(path).ok());

  auto victim = model_->BuildMatchingEngine();
  ASSERT_TRUE(victim.ok());
  EXPECT_EQ(victim->EnableInt8FromFile(path).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(victim->degraded());
  EXPECT_EQ(victim->quant_mode(), QuantMode::kFp32);
  EXPECT_EQ(DegradedGauge(), 1.0);
  EXPECT_FALSE(victim->Query(0, 5).empty() &&
               victim->Query(1, 5).empty() && victim->Query(2, 5).empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sisg
