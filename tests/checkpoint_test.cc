#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/io_util.h"
#include "core/matching_engine.h"
#include "core/sisg_model.h"
#include "corpus/corpus.h"
#include "datagen/dataset.h"
#include "eval/hitrate.h"
#include "sgns/checkpoint.h"
#include "sgns/embedding_model.h"
#include "sgns/trainer.h"

namespace sisg {
namespace {

// Per-process suffix so concurrent invocations of this binary (e.g. a
// sanitizer ctest run alongside a regular one) cannot clobber each other's
// checkpoint directories mid-run.
std::string FreshDir(const std::string& name) {
  const std::string dir =
      ::testing::TempDir() + "/" + name + "." + std::to_string(getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

std::string FreshPath(const std::string& name) {
  const std::string path =
      ::testing::TempDir() + "/" + name + "." + std::to_string(getpid());
  std::remove(path.c_str());
  return path;
}

void FlipByteAt(const std::string& path, long offset) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  const int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  std::fputc(c ^ 0x40, f);
  std::fclose(f);
}

long FileSize(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return -1;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return size;
}

// --------------------------- crc32 ---------------------------

TEST(Crc32Test, KnownAnswer) {
  // The canonical CRC-32 check value (IEEE 802.3 / zlib polynomial).
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(Crc32Test, ChainsAcrossCalls) {
  const char data[] = "the quick brown fox jumps over the lazy dog";
  const size_t n = sizeof(data) - 1;
  const uint32_t whole = Crc32(data, n);
  for (size_t split : {size_t{1}, size_t{7}, n - 1}) {
    EXPECT_EQ(Crc32(data + split, n - split, Crc32(data, split)), whole);
  }
}

// --------------------------- atomic file ---------------------------

TEST(AtomicFileTest, CommitPublishesAtomically) {
  const std::string path = FreshPath("atomic_commit.txt");
  auto file = AtomicFile::Create(path);
  ASSERT_TRUE(file.ok());
  std::fputs("hello", file->stream());
  // Nothing visible under the final name until Commit.
  EXPECT_EQ(FileSize(path), -1);
  ASSERT_TRUE(file->Commit().ok());
  EXPECT_EQ(FileSize(path), 5);
  EXPECT_EQ(FileSize(path + ".tmp"), -1);  // temp cleaned up
  std::remove(path.c_str());
}

TEST(AtomicFileTest, AbandonLeavesPreviousContent) {
  const std::string path = FreshPath("atomic_abandon.txt");
  {
    auto first = AtomicFile::Create(path);
    ASSERT_TRUE(first.ok());
    std::fputs("v1", first->stream());
    ASSERT_TRUE(first->Commit().ok());
  }
  {
    auto second = AtomicFile::Create(path);
    ASSERT_TRUE(second.ok());
    std::fputs("a much longer replacement that never lands", second->stream());
    second->Abandon();
  }
  EXPECT_EQ(FileSize(path), 2);  // v1 intact
  EXPECT_EQ(FileSize(path + ".tmp"), -1);
  std::remove(path.c_str());
}

// --------------------------- artifact layer ---------------------------

TEST(ArtifactTest, RoundTrip) {
  const std::string path = FreshPath("artifact_rt.bin");
  {
    auto w = ArtifactWriter::Open(path, "TESTKIND", 3);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->WriteScalar<uint64_t>(0xdeadbeefULL).ok());
    ASSERT_TRUE(w->Write("payload", 7).ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  auto r = ArtifactReader::Open(path, "TESTKIND");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->version(), 3u);
  EXPECT_EQ(r->payload_bytes(), 15u);
  uint64_t v = 0;
  ASSERT_TRUE(r->ReadScalar(&v).ok());
  EXPECT_EQ(v, 0xdeadbeefULL);
  char buf[8] = {0};
  ASSERT_TRUE(r->Read(buf, 7).ok());
  EXPECT_STREQ(buf, "payload");
  EXPECT_EQ(r->remaining(), 0u);
  // Reading past the payload is DataLoss, not garbage.
  EXPECT_EQ(r->Read(buf, 1).code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(ArtifactTest, KindMismatchRejected) {
  const std::string path = FreshPath("artifact_kind.bin");
  auto w = ArtifactWriter::Open(path, "KINDAAAA", 1);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(w->Write("x", 1).ok());
  ASSERT_TRUE(w->Commit().ok());
  EXPECT_EQ(ArtifactReader::Open(path, "KINDBBBB").status().code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(ArtifactTest, TruncationIsDataLoss) {
  const std::string path = FreshPath("artifact_trunc.bin");
  auto w = ArtifactWriter::Open(path, "TESTKIND", 1);
  ASSERT_TRUE(w.ok());
  std::vector<char> blob(256, 'z');
  ASSERT_TRUE(w->Write(blob.data(), blob.size()).ok());
  ASSERT_TRUE(w->Commit().ok());
  const long size = FileSize(path);
  ASSERT_GT(size, 0);
  ASSERT_EQ(::truncate(path.c_str(), size / 2), 0);
  EXPECT_EQ(ArtifactReader::Open(path, "TESTKIND").status().code(),
            StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(ArtifactTest, ByteFlipIsDataLoss) {
  const std::string path = FreshPath("artifact_flip.bin");
  auto w = ArtifactWriter::Open(path, "TESTKIND", 1);
  ASSERT_TRUE(w.ok());
  std::vector<char> blob(256, 'z');
  ASSERT_TRUE(w->Write(blob.data(), blob.size()).ok());
  ASSERT_TRUE(w->Commit().ok());
  // Flip one payload bit: the checksum must catch it.
  FlipByteAt(path, static_cast<long>(kArtifactHeaderBytes) + 100);
  EXPECT_EQ(ArtifactReader::Open(path, "TESTKIND").status().code(),
            StatusCode::kDataLoss);
  // Flip a magic byte instead: also DataLoss.
  std::remove(path.c_str());
  auto w2 = ArtifactWriter::Open(path, "TESTKIND", 1);
  ASSERT_TRUE(w2.ok());
  ASSERT_TRUE(w2->Write(blob.data(), blob.size()).ok());
  ASSERT_TRUE(w2->Commit().ok());
  FlipByteAt(path, 0);
  EXPECT_EQ(ArtifactReader::Open(path, "TESTKIND").status().code(),
            StatusCode::kDataLoss);
  std::remove(path.c_str());
}

// --------------------------- model/vocab corruption ---------------------------

TEST(ArtifactCorruptionTest, EmbeddingModelByteFlipIsDataLoss) {
  EmbeddingModel m;
  ASSERT_TRUE(m.Init(20, 16, 5).ok());
  const std::string path = FreshPath("flip_model.emb");
  ASSERT_TRUE(m.Save(path).ok());
  FlipByteAt(path, static_cast<long>(kArtifactHeaderBytes) + 64);
  EXPECT_EQ(EmbeddingModel::Load(path).status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(ArtifactCorruptionTest, EmbeddingModelImplausibleShapeRejected) {
  // A well-checksummed artifact whose declared shape would overflow the
  // allocation must be rejected before any allocation happens.
  const std::string path = FreshPath("huge_model.emb");
  auto w = ArtifactWriter::Open(path, "EMBMODEL", 2);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(w->WriteScalar<uint32_t>(1u << 20).ok());  // rows
  ASSERT_TRUE(w->WriteScalar<uint32_t>(1u << 20).ok());  // dim
  ASSERT_TRUE(w->Commit().ok());
  EXPECT_EQ(EmbeddingModel::Load(path).status().code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

// --------------------------- trainer fixture ---------------------------

class CheckpointTrainFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    DatasetSpec spec;
    spec.catalog.num_items = 300;
    spec.catalog.num_leaf_categories = 10;
    spec.catalog.num_shops = 30;
    spec.catalog.num_brands = 25;
    spec.users.num_user_types = 40;
    spec.num_train_sessions = 2000;
    spec.num_test_sessions = 300;
    auto ds = SyntheticDataset::Generate(spec);
    ASSERT_TRUE(ds.ok());
    dataset_ = std::make_unique<SyntheticDataset>(std::move(ds).value());
    token_space_ = TokenSpace::Create(&dataset_->catalog(), &dataset_->users());
    ASSERT_TRUE(corpus_
                    .Build(dataset_->train_sessions(), token_space_,
                           dataset_->catalog(), CorpusOptions{})
                    .ok());
  }

  SgnsOptions BaseOptions() const {
    SgnsOptions o;
    o.dim = 16;
    o.epochs = 2;
    o.negatives = 5;
    return o;
  }

  void ExpectBitIdentical(const EmbeddingModel& a, const EmbeddingModel& b) {
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.dim(), b.dim());
    for (uint32_t r = 0; r < a.rows(); ++r) {
      for (uint32_t d = 0; d < a.dim(); ++d) {
        ASSERT_EQ(a.Input(r)[d], b.Input(r)[d]) << "input row " << r;
        ASSERT_EQ(a.Output(r)[d], b.Output(r)[d]) << "output row " << r;
      }
    }
  }

  double HitRateAt10(EmbeddingModel&& emb) {
    SisgConfig cfg;
    cfg.variant = SisgVariant::kSisgFU;
    SisgModel model(cfg, token_space_, corpus_.vocab(), std::move(emb));
    auto engine = model.BuildMatchingEngine();
    EXPECT_TRUE(engine.ok());
    auto res = EvaluateHitRate(
        dataset_->test_sessions(),
        [&](uint32_t item, uint32_t k) { return engine->Query(item, k); },
        {10});
    return res.hit_rate[0];
  }

  std::unique_ptr<SyntheticDataset> dataset_;
  TokenSpace token_space_;
  Corpus corpus_;
};

// --------------------------- checkpointer ---------------------------

TEST_F(CheckpointTrainFixture, CheckpointerSaveLoadPrune) {
  const std::string dir = FreshDir("ckpt_basic");
  Checkpointer::Options copts;
  copts.dir = dir;
  copts.keep = 2;
  auto ck = Checkpointer::Create(copts);
  ASSERT_TRUE(ck.ok());

  EmbeddingModel m;
  TrainProgress none;
  // Empty directory: nothing to load.
  EXPECT_EQ(ck->LoadLatest(&m, &none).code(), StatusCode::kNotFound);

  ASSERT_TRUE(m.Init(12, 8, 3).ok());
  for (uint64_t i = 1; i <= 3; ++i) {
    TrainProgress p;
    p.next_work = 100 * i;
    p.processed_tokens = 1000 * i;
    p.pairs_trained = 10 * i;
    p.tokens_kept = 900 * i;
    p.rng_states = {{i, i + 1, i + 2, i + 3}};
    p.dead_workers = {static_cast<uint32_t>(i)};
    m.Input(0)[0] = static_cast<float>(i);
    ASSERT_TRUE(ck->Save(m, p).ok());
  }
  EXPECT_EQ(ck->latest_seq(), 3u);

  EmbeddingModel loaded;
  TrainProgress p;
  ASSERT_TRUE(ck->LoadLatest(&loaded, &p).ok());
  EXPECT_EQ(p.next_work, 300u);
  EXPECT_EQ(p.processed_tokens, 3000u);
  ASSERT_EQ(p.rng_states.size(), 1u);
  EXPECT_EQ(p.rng_states[0][3], 6u);
  ASSERT_EQ(p.dead_workers.size(), 1u);
  EXPECT_EQ(p.dead_workers[0], 3u);
  EXPECT_EQ(loaded.Input(0)[0], 3.0f);

  // keep=2: checkpoint 1 pruned, 2 and 3 retained.
  EXPECT_EQ(FileSize(dir + "/ckpt-1.emb"), -1);
  EXPECT_EQ(FileSize(dir + "/ckpt-1.state"), -1);
  EXPECT_GT(FileSize(dir + "/ckpt-2.emb"), 0);
  EXPECT_GT(FileSize(dir + "/ckpt-3.emb"), 0);

  // A new Checkpointer over the same directory resumes the sequence.
  auto again = Checkpointer::Create(copts);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->latest_seq(), 3u);
  std::filesystem::remove_all(dir);
}

TEST_F(CheckpointTrainFixture, CorruptedCheckpointIsDataLoss) {
  const std::string dir = FreshDir("ckpt_corrupt");
  Checkpointer::Options copts;
  copts.dir = dir;
  auto ck = Checkpointer::Create(copts);
  ASSERT_TRUE(ck.ok());
  EmbeddingModel m;
  ASSERT_TRUE(m.Init(10, 8, 3).ok());
  TrainProgress p;
  p.rng_states = {{1, 2, 3, 4}};
  ASSERT_TRUE(ck->Save(m, p).ok());
  FlipByteAt(dir + "/ckpt-1.state", static_cast<long>(kArtifactHeaderBytes) + 8);
  EmbeddingModel out;
  TrainProgress pout;
  EXPECT_EQ(ck->LoadLatest(&out, &pout).code(), StatusCode::kDataLoss);
  std::filesystem::remove_all(dir);
}

// --------------------------- crash + resume ---------------------------

TEST_F(CheckpointTrainFixture, SingleThreadCrashResumeIsBitExact) {
  const SgnsOptions opts = BaseOptions();
  const uint64_t interval = 1000;

  // Reference: checkpointing enabled, runs to completion.
  const std::string ref_dir = FreshDir("ckpt_ref");
  Checkpointer::Options ref_copts;
  ref_copts.dir = ref_dir;
  auto ref_ck = Checkpointer::Create(ref_copts);
  ASSERT_TRUE(ref_ck.ok());
  CheckpointConfig ref_cfg;
  ref_cfg.checkpointer = &*ref_ck;
  ref_cfg.interval_slots = interval;
  EmbeddingModel ref_model;
  TrainStats ref_stats;
  ASSERT_TRUE(
      SgnsTrainer(opts).Train(corpus_, &ref_model, &ref_stats, &ref_cfg).ok());
  ASSERT_GE(ref_stats.checkpoints_saved, 2u);

  // Crashed run: aborts right after the first checkpoint commits.
  const std::string crash_dir = FreshDir("ckpt_crash");
  Checkpointer::Options crash_copts;
  crash_copts.dir = crash_dir;
  auto crash_ck = Checkpointer::Create(crash_copts);
  ASSERT_TRUE(crash_ck.ok());
  CheckpointConfig crash_cfg;
  crash_cfg.checkpointer = &*crash_ck;
  crash_cfg.interval_slots = interval;
  crash_cfg.crash_after_saves = 1;
  EmbeddingModel crash_model;
  TrainStats crash_stats;
  const Status crashed =
      SgnsTrainer(opts).Train(corpus_, &crash_model, &crash_stats, &crash_cfg);
  EXPECT_EQ(crashed.code(), StatusCode::kAborted);
  EXPECT_EQ(crash_stats.checkpoints_saved, 1u);

  // Resume from the durable checkpoint and finish.
  auto resume_ck = Checkpointer::Create(crash_copts);
  ASSERT_TRUE(resume_ck.ok());
  EmbeddingModel resumed_model;
  TrainProgress progress;
  ASSERT_TRUE(resume_ck->LoadLatest(&resumed_model, &progress).ok());
  EXPECT_GT(progress.next_work, 0u);
  CheckpointConfig resume_cfg;
  resume_cfg.checkpointer = &*resume_ck;
  resume_cfg.interval_slots = interval;
  resume_cfg.resume = &progress;
  TrainStats resume_stats;
  ASSERT_TRUE(SgnsTrainer(opts)
                  .Train(corpus_, &resumed_model, &resume_stats, &resume_cfg)
                  .ok());

  // The crash never happened, as far as the weights can tell.
  ExpectBitIdentical(ref_model, resumed_model);
  EXPECT_EQ(ref_stats.tokens_seen, resume_stats.tokens_seen);
  EXPECT_EQ(ref_stats.pairs_trained, resume_stats.pairs_trained);
  std::filesystem::remove_all(ref_dir);
  std::filesystem::remove_all(crash_dir);
}

TEST_F(CheckpointTrainFixture, ResumeContinuesLrSchedule) {
  const SgnsOptions opts = BaseOptions();
  const std::string dir = FreshDir("ckpt_lr");
  Checkpointer::Options copts;
  copts.dir = dir;
  auto ck = Checkpointer::Create(copts);
  ASSERT_TRUE(ck.ok());
  CheckpointConfig cfg;
  cfg.checkpointer = &*ck;
  cfg.interval_slots = 1000;
  cfg.crash_after_saves = 1;
  EmbeddingModel model;
  TrainStats crash_stats;
  EXPECT_EQ(
      SgnsTrainer(opts).Train(corpus_, &model, &crash_stats, &cfg).code(),
      StatusCode::kAborted);
  // A fresh run starts at the configured learning rate...
  EXPECT_FLOAT_EQ(crash_stats.lr_start, opts.learning_rate);

  auto resume_ck = Checkpointer::Create(copts);
  ASSERT_TRUE(resume_ck.ok());
  EmbeddingModel resumed;
  TrainProgress progress;
  ASSERT_TRUE(resume_ck->LoadLatest(&resumed, &progress).ok());
  CheckpointConfig resume_cfg;
  resume_cfg.checkpointer = &*resume_ck;
  resume_cfg.interval_slots = 1000;
  resume_cfg.resume = &progress;
  TrainStats resume_stats;
  ASSERT_TRUE(SgnsTrainer(opts)
                  .Train(corpus_, &resumed, &resume_stats, &resume_cfg)
                  .ok());
  // ...while the resumed run continues the decayed schedule exactly where
  // the checkpoint left it: lr0 * (1 - tokens_done / planned_tokens).
  const uint64_t planned =
      static_cast<uint64_t>(opts.epochs) * corpus_.num_tokens();
  const float expected_lr =
      opts.learning_rate *
      (1.0f - static_cast<float>(progress.processed_tokens) /
                  static_cast<float>(planned));
  EXPECT_FLOAT_EQ(resume_stats.lr_start, expected_lr);
  EXPECT_LT(resume_stats.lr_start, crash_stats.lr_start);
  EXPECT_GT(resume_stats.lr_start, resume_stats.lr_end);
  std::filesystem::remove_all(dir);
}

TEST_F(CheckpointTrainFixture, MultiThreadCrashResumeReachesQuality) {
  SgnsOptions opts = BaseOptions();
  opts.num_threads = 4;
  opts.epochs = 3;

  // Uninterrupted baseline (no checkpointing).
  EmbeddingModel full_model;
  ASSERT_TRUE(SgnsTrainer(opts).Train(corpus_, &full_model).ok());
  const double hr_full = HitRateAt10(std::move(full_model));
  ASSERT_GT(hr_full, 0.05);

  // Crash after the first checkpoint, then resume with the same threads.
  const std::string dir = FreshDir("ckpt_mt");
  Checkpointer::Options copts;
  copts.dir = dir;
  auto ck = Checkpointer::Create(copts);
  ASSERT_TRUE(ck.ok());
  CheckpointConfig cfg;
  cfg.checkpointer = &*ck;
  cfg.interval_slots = 1500;
  cfg.crash_after_saves = 1;
  EmbeddingModel model;
  EXPECT_EQ(SgnsTrainer(opts).Train(corpus_, &model, nullptr, &cfg).code(),
            StatusCode::kAborted);

  auto resume_ck = Checkpointer::Create(copts);
  ASSERT_TRUE(resume_ck.ok());
  EmbeddingModel resumed;
  TrainProgress progress;
  ASSERT_TRUE(resume_ck->LoadLatest(&resumed, &progress).ok());
  ASSERT_EQ(progress.rng_states.size(), 4u);
  CheckpointConfig resume_cfg;
  resume_cfg.checkpointer = &*resume_ck;
  resume_cfg.interval_slots = 1500;
  resume_cfg.resume = &progress;
  TrainStats resume_stats;
  ASSERT_TRUE(SgnsTrainer(opts)
                  .Train(corpus_, &resumed, &resume_stats, &resume_cfg)
                  .ok());
  EXPECT_EQ(resume_stats.tokens_seen,
            static_cast<uint64_t>(opts.epochs) * corpus_.num_tokens());

  const double hr_resumed = HitRateAt10(std::move(resumed));
  EXPECT_GT(hr_resumed, 0.85 * hr_full)
      << "resumed quality collapsed: " << hr_resumed << " vs " << hr_full;
  std::filesystem::remove_all(dir);
}

TEST_F(CheckpointTrainFixture, ResumeValidatesThreadCountAndPosition) {
  SgnsOptions opts = BaseOptions();
  opts.num_threads = 2;
  TrainProgress progress;
  progress.rng_states = {{1, 2, 3, 4}};  // one stream, trainer wants two
  progress.next_work = 1;
  CheckpointConfig cfg;
  cfg.resume = &progress;
  EmbeddingModel model;
  ASSERT_TRUE(model.Init(corpus_.vocab().size(), opts.dim, opts.seed).ok());
  EXPECT_EQ(SgnsTrainer(opts).Train(corpus_, &model, nullptr, &cfg).code(),
            StatusCode::kFailedPrecondition);

  progress.rng_states = {{1, 2, 3, 4}, {5, 6, 7, 8}};
  progress.next_work = 1ull << 60;  // beyond the work queue
  EXPECT_EQ(SgnsTrainer(opts).Train(corpus_, &model, nullptr, &cfg).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace sisg
