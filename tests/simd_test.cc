#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/math_util.h"
#include "common/rng.h"
#include "common/simd.h"
#include "sgns/embedding_model.h"
#include "sgns/sgns_kernel.h"

namespace sisg {
namespace {

// Odd dims exercise the vector tail loop; 64/128/256 the main lanes.
const size_t kDims[] = {1, 7, 64, 100, 128, 256};

std::vector<float> RandomVec(Rng& rng, size_t dim, float scale = 0.1f) {
  std::vector<float> v(dim);
  for (auto& x : v) x = (rng.UniformFloat() * 2.0f - 1.0f) * scale;
  return v;
}

// --------------------------- dispatch ---------------------------

TEST(SimdDispatchTest, ResolveRespectsPreferenceAndCpu) {
  EXPECT_EQ(ResolveSimdLevel("scalar", true), SimdLevel::kScalar);
  EXPECT_EQ(ResolveSimdLevel("scalar", false), SimdLevel::kScalar);
  EXPECT_EQ(ResolveSimdLevel("auto", false), SimdLevel::kScalar);
  EXPECT_EQ(ResolveSimdLevel("avx2", false), SimdLevel::kScalar);
  if (simd_avx2::Ops() != nullptr) {
    EXPECT_EQ(ResolveSimdLevel("auto", true), SimdLevel::kAvx2);
    EXPECT_EQ(ResolveSimdLevel("avx2", true), SimdLevel::kAvx2);
  } else {
    EXPECT_EQ(ResolveSimdLevel("auto", true), SimdLevel::kScalar);
  }
}

TEST(SimdDispatchTest, ActiveOpsAreRunnable) {
  const SimdOps& ops = GetSimdOps();
  ASSERT_NE(ops.dot, nullptr);
  ASSERT_NE(ops.axpy, nullptr);
  ASSERT_NE(ops.sgns_update_fused, nullptr);
  ASSERT_NE(ops.dot_batch, nullptr);
  ASSERT_NE(ops.top_k_scan, nullptr);
  const float a[4] = {1.0f, 2.0f, 3.0f, 4.0f};
  const float b[4] = {1.0f, 1.0f, 1.0f, 1.0f};
  EXPECT_NEAR(ops.dot(a, b, 4), 10.0f, 1e-6f);
}

// --------------------------- parity ---------------------------

TEST(SimdParityTest, DotMatchesScalar) {
  const SimdOps& ops = GetSimdOps();
  Rng rng(11);
  for (size_t dim : kDims) {
    const auto a = RandomVec(rng, dim);
    const auto b = RandomVec(rng, dim);
    const float ref = simd_scalar::Dot(a.data(), b.data(), dim);
    EXPECT_NEAR(ops.dot(a.data(), b.data(), dim), ref, 1e-5f)
        << "dim=" << dim;
  }
}

TEST(SimdParityTest, AxpyMatchesScalar) {
  const SimdOps& ops = GetSimdOps();
  Rng rng(12);
  for (size_t dim : kDims) {
    const auto x = RandomVec(rng, dim);
    auto y_ref = RandomVec(rng, dim);
    auto y_simd = y_ref;
    simd_scalar::Axpy(0.37f, x.data(), y_ref.data(), dim);
    ops.axpy(0.37f, x.data(), y_simd.data(), dim);
    for (size_t i = 0; i < dim; ++i) {
      EXPECT_NEAR(y_simd[i], y_ref[i], 1e-5f) << "dim=" << dim << " i=" << i;
    }
  }
}

TEST(SimdParityTest, SgnsUpdateFusedMatchesScalar) {
  const SimdOps& ops = GetSimdOps();
  Rng rng(13);
  const int num_negs = 5;
  const SigmoidTable sigmoid;
  for (size_t dim : kDims) {
    const auto in = RandomVec(rng, dim, 0.5f);
    auto pos_ref = RandomVec(rng, dim, 0.5f);
    auto pos_simd = pos_ref;
    std::vector<std::vector<float>> negs_ref, negs_simd;
    std::vector<float*> neg_ptrs_ref, neg_ptrs_simd;
    for (int k = 0; k < num_negs; ++k) {
      negs_ref.push_back(RandomVec(rng, dim, 0.5f));
      negs_simd.push_back(negs_ref.back());
    }
    for (int k = 0; k < num_negs; ++k) {
      // A null in the middle checks the skip path on both sides.
      neg_ptrs_ref.push_back(k == 2 ? nullptr : negs_ref[k].data());
      neg_ptrs_simd.push_back(k == 2 ? nullptr : negs_simd[k].data());
    }
    std::vector<float> grad_ref(dim, 0.0f), grad_simd(dim, 0.0f);
    SgnsUpdateScalar(in.data(), grad_ref.data(), pos_ref.data(),
                     neg_ptrs_ref.data(), num_negs, 0.1f, dim, sigmoid);
    ops.sgns_update_fused(in.data(), grad_simd.data(), pos_simd.data(),
                          neg_ptrs_simd.data(), num_negs, 0.1f, dim, sigmoid);
    for (size_t i = 0; i < dim; ++i) {
      EXPECT_NEAR(grad_simd[i], grad_ref[i], 1e-5f) << "dim=" << dim;
      EXPECT_NEAR(pos_simd[i], pos_ref[i], 1e-5f) << "dim=" << dim;
      for (int k = 0; k < num_negs; ++k) {
        EXPECT_NEAR(negs_simd[k][i], negs_ref[k][i], 1e-5f)
            << "dim=" << dim << " neg=" << k;
      }
    }
  }
}

TEST(SimdParityTest, FusedHandlesManyNegativesAcrossChunks) {
  // More negatives than the AVX2 kernel's stack chunk (64) in one call.
  const SimdOps& ops = GetSimdOps();
  Rng rng(14);
  const size_t dim = 64;
  const int num_negs = 150;
  const SigmoidTable sigmoid;
  const auto in = RandomVec(rng, dim, 0.5f);
  auto pos_ref = RandomVec(rng, dim, 0.5f);
  auto pos_simd = pos_ref;
  std::vector<std::vector<float>> negs_ref(num_negs), negs_simd(num_negs);
  std::vector<float*> ptrs_ref(num_negs), ptrs_simd(num_negs);
  for (int k = 0; k < num_negs; ++k) {
    negs_ref[k] = RandomVec(rng, dim, 0.5f);
    negs_simd[k] = negs_ref[k];
    ptrs_ref[k] = negs_ref[k].data();
    ptrs_simd[k] = negs_simd[k].data();
  }
  std::vector<float> grad_ref(dim, 0.0f), grad_simd(dim, 0.0f);
  SgnsUpdateScalar(in.data(), grad_ref.data(), pos_ref.data(), ptrs_ref.data(),
                   num_negs, 0.05f, dim, sigmoid);
  ops.sgns_update_fused(in.data(), grad_simd.data(), pos_simd.data(),
                        ptrs_simd.data(), num_negs, 0.05f, dim, sigmoid);
  for (size_t i = 0; i < dim; ++i) {
    EXPECT_NEAR(grad_simd[i], grad_ref[i], 1e-4f);
    EXPECT_NEAR(pos_simd[i], pos_ref[i], 1e-5f);
  }
}

// --------------------------- retrieval kernels ---------------------------

TEST(SimdParityTest, DotBatchMatchesScalar) {
  const SimdOps& ops = GetSimdOps();
  Rng rng(15);
  // Block sizes straddling the 4-row tile; strided (padded) and tight rows.
  for (size_t dim : kDims) {
    for (uint32_t n : {1u, 3u, 4u, 5u, 17u}) {
      const size_t stride = AlignedRowStride(dim);
      AlignedFloatVector rows(n * stride, 0.0f);
      for (uint32_t r = 0; r < n; ++r) {
        for (size_t d = 0; d < dim; ++d) {
          rows[r * stride + d] = rng.UniformFloat() * 2.0f - 1.0f;
        }
      }
      const auto q = RandomVec(rng, dim, 1.0f);
      std::vector<float> ref(n), got(n);
      simd_scalar::DotBatch(q.data(), rows.data(), stride, n, dim, ref.data());
      ops.dot_batch(q.data(), rows.data(), stride, n, dim, got.data());
      for (uint32_t r = 0; r < n; ++r) {
        EXPECT_NEAR(got[r], ref[r], 1e-4f) << "dim=" << dim << " row=" << r;
        // The strided batch must agree with the plain per-row dot.
        EXPECT_NEAR(got[r], simd_scalar::Dot(q.data(), rows.data() + r * stride, dim),
                    1e-4f);
      }
    }
  }
}

TEST(SimdParityTest, TopKScanMatchesScalarSelector) {
  const SimdOps& ops = GetSimdOps();
  Rng rng(16);
  for (size_t dim : {1ul, 7ul, 64ul, 128ul}) {
    // Spans several of the AVX2 kernel's 256-row chunks.
    const uint32_t n = 700;
    const size_t stride = AlignedRowStride(dim);
    AlignedFloatVector rows(n * stride, 0.0f);
    for (uint32_t r = 0; r < n; ++r) {
      for (size_t d = 0; d < dim; ++d) {
        rows[r * stride + d] = rng.UniformFloat() * 2.0f - 1.0f;
      }
    }
    const auto q = RandomVec(rng, dim, 1.0f);
    std::vector<uint32_t> ids(n);
    for (uint32_t r = 0; r < n; ++r) ids[r] = r * 2;  // non-identity id map
    TopKSelector ref_sel(10), got_sel(10);
    simd_scalar::TopKScan(q.data(), rows.data(), stride, n, dim, ids.data(),
                          /*exclude=*/6, &ref_sel);
    ops.top_k_scan(q.data(), rows.data(), stride, n, dim, ids.data(),
                   /*exclude=*/6, &got_sel);
    const auto ref = ref_sel.Take();
    const auto got = got_sel.Take();
    ASSERT_EQ(ref.size(), got.size()) << "dim=" << dim;
    for (size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(got[i].id, ref[i].id) << "dim=" << dim << " rank=" << i;
      EXPECT_NEAR(got[i].score, ref[i].score, 1e-4f) << "dim=" << dim;
      EXPECT_NE(got[i].id, 6u);  // excluded id never surfaces
    }
  }
}

TEST(SimdParityTest, TopKScanNullIdsUsesRowIndex) {
  const SimdOps& ops = GetSimdOps();
  Rng rng(17);
  const size_t dim = 16, stride = AlignedRowStride(dim);
  const uint32_t n = 50;
  AlignedFloatVector rows(n * stride, 0.0f);
  for (uint32_t r = 0; r < n; ++r) {
    for (size_t d = 0; d < dim; ++d) {
      rows[r * stride + d] = rng.UniformFloat() - 0.5f;
    }
  }
  const auto q = RandomVec(rng, dim, 1.0f);
  TopKSelector sel(n);
  ops.top_k_scan(q.data(), rows.data(), stride, n, dim, nullptr,
                 /*exclude=*/3, &sel);
  const auto res = sel.Take();
  EXPECT_EQ(res.size(), n - 1);  // row 3 excluded by index
  for (const auto& r : res) {
    EXPECT_LT(r.id, n);
    EXPECT_NE(r.id, 3u);
  }
}

// --------------------------- aligned storage ---------------------------

TEST(AlignedStorageTest, RowStrideRoundsUpToCacheLine) {
  EXPECT_EQ(AlignedRowStride(1), 16u);
  EXPECT_EQ(AlignedRowStride(16), 16u);
  EXPECT_EQ(AlignedRowStride(17), 32u);
  EXPECT_EQ(AlignedRowStride(64), 64u);
  EXPECT_EQ(AlignedRowStride(100), 112u);
  EXPECT_EQ(AlignedRowStride(128), 128u);
}

TEST(AlignedStorageTest, EmbeddingRowsAre64ByteAligned) {
  for (uint32_t dim : {7u, 12u, 64u, 100u}) {
    EmbeddingModel m;
    ASSERT_TRUE(m.Init(17, dim, 5).ok());
    EXPECT_GE(m.row_stride(), dim);
    EXPECT_EQ(m.row_stride() % 16, 0u);
    for (uint32_t r = 0; r < m.rows(); ++r) {
      EXPECT_EQ(reinterpret_cast<uintptr_t>(m.Input(r)) % 64, 0u)
          << "dim=" << dim << " row=" << r;
      EXPECT_EQ(reinterpret_cast<uintptr_t>(m.Output(r)) % 64, 0u)
          << "dim=" << dim << " row=" << r;
    }
  }
}

}  // namespace
}  // namespace sisg
