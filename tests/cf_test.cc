#include <gtest/gtest.h>

#include <cmath>

#include "cf/item_cf.h"
#include "datagen/dataset.h"
#include "eval/hitrate.h"

namespace sisg {
namespace {

Session MakeSession(std::vector<uint32_t> items) {
  Session s;
  s.items = std::move(items);
  return s;
}

TEST(ItemCfTest, RejectsBadInput) {
  ItemCf cf;
  ItemCfOptions o;
  EXPECT_FALSE(cf.Build({}, 0, o).ok());
  o.window = 0;
  EXPECT_FALSE(cf.Build({MakeSession({0, 1})}, 2, o).ok());
  o = ItemCfOptions{};
  o.top_k = 0;
  EXPECT_FALSE(cf.Build({MakeSession({0, 1})}, 2, o).ok());
  o = ItemCfOptions{};
  EXPECT_EQ(cf.Build({MakeSession({0, 9})}, 2, o).code(),
            StatusCode::kOutOfRange);
}

TEST(ItemCfTest, DirectionalCountsOrderedPairsOnly) {
  // 0 -> 1 occurs twice; 1 -> 0 never.
  std::vector<Session> sessions = {MakeSession({0, 1}), MakeSession({0, 1})};
  ItemCfOptions o;
  o.window = 1;
  o.directional = true;
  ItemCf cf;
  ASSERT_TRUE(cf.Build(sessions, 2, o).ok());
  const auto fwd = cf.Query(0, 10);
  ASSERT_EQ(fwd.size(), 1u);
  EXPECT_EQ(fwd[0].id, 1u);
  // sim = c(0,1) / sqrt(c0 * c1) = 2 / sqrt(2*2) = 1.
  EXPECT_NEAR(fwd[0].score, 1.0f, 1e-6);
  EXPECT_TRUE(cf.Query(1, 10).empty());
}

TEST(ItemCfTest, SymmetricCountsBothDirections) {
  std::vector<Session> sessions = {MakeSession({0, 1}), MakeSession({0, 1})};
  ItemCfOptions o;
  o.window = 1;
  o.directional = false;
  ItemCf cf;
  ASSERT_TRUE(cf.Build(sessions, 2, o).ok());
  EXPECT_EQ(cf.Query(1, 10).size(), 1u);
  EXPECT_EQ(cf.Query(1, 10)[0].id, 0u);
}

TEST(ItemCfTest, WindowLimitsCoOccurrence) {
  std::vector<Session> sessions = {MakeSession({0, 1, 2, 3, 4})};
  ItemCfOptions o;
  o.window = 2;
  o.directional = true;
  ItemCf cf;
  ASSERT_TRUE(cf.Build(sessions, 5, o).ok());
  const auto from0 = cf.Query(0, 10);
  std::set<uint32_t> ids;
  for (const auto& s : from0) ids.insert(s.id);
  EXPECT_EQ(ids, (std::set<uint32_t>{1, 2}));
}

TEST(ItemCfTest, PopularityNormalization) {
  // Item 9 is globally hot; normalization should not let it dominate item 0's
  // list over the dedicated partner 1.
  std::vector<Session> sessions;
  sessions.push_back(MakeSession({0, 1}));
  sessions.push_back(MakeSession({0, 1}));
  sessions.push_back(MakeSession({0, 9}));
  for (int i = 0; i < 50; ++i) sessions.push_back(MakeSession({5, 9}));
  ItemCfOptions o;
  o.window = 1;
  o.directional = true;
  ItemCf cf;
  ASSERT_TRUE(cf.Build(sessions, 10, o).ok());
  const auto from0 = cf.Query(0, 2);
  ASSERT_EQ(from0.size(), 2u);
  EXPECT_EQ(from0[0].id, 1u);  // strong dedicated partner outranks hot item
}

TEST(ItemCfTest, QueryBounds) {
  ItemCf cf;
  ItemCfOptions o;
  o.top_k = 5;
  ASSERT_TRUE(cf.Build({MakeSession({0, 1, 2})}, 3, o).ok());
  EXPECT_TRUE(cf.Query(99, 10).empty());       // unknown item
  EXPECT_LE(cf.Query(0, 3).size(), 3u);        // k smaller than table
  EXPECT_LE(cf.Query(0, 100).size(), 5u);      // capped at top_k
}

TEST(ItemCfTest, SelfPairsIgnored) {
  std::vector<Session> sessions = {MakeSession({3, 3, 3})};
  ItemCf cf;
  ASSERT_TRUE(cf.Build(sessions, 4, ItemCfOptions{}).ok());
  EXPECT_TRUE(cf.Query(3, 10).empty());
}

TEST(ItemCfTest, EndToEndHitRateIsStrong) {
  DatasetSpec spec;
  spec.catalog.num_items = 800;
  spec.catalog.num_leaf_categories = 8;
  spec.users.num_user_types = 60;
  spec.num_train_sessions = 4000;
  spec.num_test_sessions = 500;
  auto ds = SyntheticDataset::Generate(spec);
  ASSERT_TRUE(ds.ok());
  ItemCf cf;
  ItemCfOptions o;
  o.window = 2;
  ASSERT_TRUE(cf.Build(ds->train_sessions(), ds->catalog().num_items(), o).ok());
  const auto res = EvaluateHitRate(
      ds->test_sessions(),
      [&](uint32_t item, uint32_t k) { return cf.Query(item, k); }, {10});
  // CF memorizes first-order transitions; on this dense corpus it is strong.
  EXPECT_GT(res.hit_rate[0], 0.3);
}

}  // namespace
}  // namespace sisg
