#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "datagen/catalog.h"
#include "datagen/dataset.h"
#include "datagen/feature_schema.h"
#include "datagen/session_generator.h"
#include "datagen/user_universe.h"

namespace sisg {
namespace {

CatalogConfig SmallCatalogConfig() {
  CatalogConfig c;
  c.num_items = 600;
  c.num_leaf_categories = 12;
  c.leaves_per_top = 4;
  c.num_shops = 60;
  c.num_brands = 40;
  c.num_cities = 8;
  c.num_styles = 6;
  c.num_materials = 5;
  c.seed = 99;
  return c;
}

// --------------------------- schema ---------------------------

TEST(FeatureSchemaTest, NamesAndTokens) {
  EXPECT_STREQ(ItemFeatureName(ItemFeatureKind::kLeafCategory), "leaf_category");
  EXPECT_EQ(ItemFeatureToken(ItemFeatureKind::kLeafCategory, 1234),
            "leaf_category_1234");
  EXPECT_EQ(AllItemFeatureKinds().size(), static_cast<size_t>(kNumItemFeatures));
}

TEST(FeatureSchemaTest, ItemMetaFeatureAccessor) {
  ItemMeta m;
  m.brand = 7;
  m.city = 3;
  m.leaf_category = 11;
  EXPECT_EQ(m.Feature(ItemFeatureKind::kBrand), 7u);
  EXPECT_EQ(m.Feature(ItemFeatureKind::kCity), 3u);
  EXPECT_EQ(m.Feature(ItemFeatureKind::kLeafCategory), 11u);
}

TEST(FeatureSchemaTest, AgpRoundTrip) {
  for (int g = 0; g < kNumGenders; ++g) {
    for (int a = 0; a < kNumAgeBuckets; ++a) {
      for (int p = 0; p < kNumPurchaseLevels; ++p) {
        int g2, a2, p2;
        ItemCatalog::DecodeAgp(ItemCatalog::EncodeAgp(g, a, p), &g2, &a2, &p2);
        EXPECT_EQ(g, g2);
        EXPECT_EQ(a, a2);
        EXPECT_EQ(p, p2);
      }
    }
  }
}

// --------------------------- catalog ---------------------------

TEST(CatalogTest, RejectsBadConfigs) {
  ItemCatalog cat;
  CatalogConfig c = SmallCatalogConfig();
  c.num_items = 0;
  EXPECT_FALSE(cat.Build(c).ok());
  c = SmallCatalogConfig();
  c.num_leaf_categories = 400;  // < 4 items per leaf
  EXPECT_FALSE(cat.Build(c).ok());
  c = SmallCatalogConfig();
  c.num_brands = 0;
  EXPECT_FALSE(cat.Build(c).ok());
}

class CatalogInvariants : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CatalogInvariants, StructureConsistent) {
  CatalogConfig c = SmallCatalogConfig();
  c.num_items = GetParam();
  ItemCatalog cat;
  ASSERT_TRUE(cat.Build(c).ok());
  EXPECT_EQ(cat.num_items(), c.num_items);
  EXPECT_EQ(cat.num_leaves(), c.num_leaf_categories);
  EXPECT_EQ(cat.num_tops(), (c.num_leaf_categories + c.leaves_per_top - 1) /
                                c.leaves_per_top);

  uint32_t total = 0;
  for (uint32_t leaf = 0; leaf < cat.num_leaves(); ++leaf) {
    const auto& items = cat.LeafItems(leaf);
    ASSERT_GE(items.size(), 4u);
    total += items.size();
    for (uint32_t r = 0; r < items.size(); ++r) {
      const uint32_t item = items[r];
      EXPECT_EQ(cat.meta(item).leaf_category, leaf);
      EXPECT_EQ(cat.RankInLeaf(item), r);
      EXPECT_EQ(cat.meta(item).top_level_category, leaf / c.leaves_per_top);
      EXPECT_LT(cat.meta(item).brand, c.num_brands);
      EXPECT_LT(cat.meta(item).shop, c.num_shops);
      EXPECT_LT(cat.meta(item).city, c.num_cities);
      EXPECT_LT(cat.meta(item).style, c.num_styles);
      EXPECT_LT(cat.meta(item).material, c.num_materials);
      EXPECT_GE(cat.Level(item), 0.0);
      EXPECT_LT(cat.Level(item), 1.0);
      EXPECT_GT(cat.Popularity(item), 0.0);
    }
  }
  EXPECT_EQ(total, c.num_items);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CatalogInvariants,
                         ::testing::Values(48u, 600u, 3000u));

TEST(CatalogTest, LeafBrandIndexMatchesMeta) {
  ItemCatalog cat;
  ASSERT_TRUE(cat.Build(SmallCatalogConfig()).ok());
  for (uint32_t item = 0; item < cat.num_items(); ++item) {
    const ItemMeta& m = cat.meta(item);
    const auto& pool = cat.LeafBrandItems(m.leaf_category, m.brand);
    EXPECT_NE(std::find(pool.begin(), pool.end(), item), pool.end());
  }
  // Unknown brand in a leaf yields the empty list.
  EXPECT_TRUE(cat.LeafBrandItems(0, 999999).empty());
}

TEST(CatalogTest, StartItemsRespectPurchaseBand) {
  ItemCatalog cat;
  CatalogConfig c = SmallCatalogConfig();
  c.num_items = 2000;
  c.num_leaf_categories = 4;  // big leaves for a clear band signal
  ASSERT_TRUE(cat.Build(c).ok());
  Rng rng(5);
  double low_level = 0.0, high_level = 0.0;
  const int kSamples = 3000;
  for (int i = 0; i < kSamples; ++i) {
    low_level += cat.Level(cat.SampleStartItem(0, 0, rng));
    high_level += cat.Level(cat.SampleStartItem(0, 2, rng));
  }
  EXPECT_LT(low_level / kSamples + 0.15, high_level / kSamples);
}

TEST(CatalogTest, DeterministicAcrossBuilds) {
  ItemCatalog a, b;
  ASSERT_TRUE(a.Build(SmallCatalogConfig()).ok());
  ASSERT_TRUE(b.Build(SmallCatalogConfig()).ok());
  for (uint32_t i = 0; i < a.num_items(); ++i) {
    EXPECT_EQ(a.meta(i).brand, b.meta(i).brand);
    EXPECT_EQ(a.meta(i).shop, b.meta(i).shop);
    EXPECT_DOUBLE_EQ(a.Popularity(i), b.Popularity(i));
  }
}

TEST(CatalogTest, PopularityIsZipf) {
  ItemCatalog cat;
  ASSERT_TRUE(cat.Build(SmallCatalogConfig()).ok());
  std::vector<double> pops;
  for (uint32_t i = 0; i < cat.num_items(); ++i) pops.push_back(cat.Popularity(i));
  std::sort(pops.begin(), pops.end(), std::greater<>());
  EXPECT_GT(pops[0] / pops[99], 50.0);  // 1/r^0.9: rank1 vs rank100 ~ 63x
}

// --------------------------- user universe ---------------------------

TEST(UserUniverseTest, BuildAndAccessors) {
  UserUniverse users;
  UserUniverseConfig c;
  c.num_user_types = 300;
  ASSERT_TRUE(users.Build(c, 8).ok());
  EXPECT_EQ(users.num_types(), 300u);
  for (uint32_t ut = 0; ut < users.num_types(); ++ut) {
    const UserType& t = users.type(ut);
    EXPECT_LT(t.gender, kNumGenders);
    EXPECT_LT(t.age_bucket, kNumAgeBuckets);
    EXPECT_LT(t.purchase_level, kNumPurchaseLevels);
    EXPECT_EQ(t.preferred_tops.size(), 3u);
    std::set<uint32_t> distinct(t.preferred_tops.begin(), t.preferred_tops.end());
    EXPECT_EQ(distinct.size(), t.preferred_tops.size());
    for (uint32_t top : t.preferred_tops) EXPECT_LT(top, 8u);
  }
}

TEST(UserUniverseTest, TypeTokenFormat) {
  UserUniverse users;
  UserUniverseConfig c;
  c.num_user_types = 80;
  ASSERT_TRUE(users.Build(c, 4).ok());
  std::set<std::string> tokens;
  for (uint32_t ut = 0; ut < users.num_types(); ++ut) {
    const std::string tok = users.TypeToken(ut);
    EXPECT_EQ(tok.rfind("usertype_", 0), 0u) << tok;
    tokens.insert(tok);
  }
  // Tokens are not guaranteed globally unique (tag masks are random), but
  // most should differ.
  EXPECT_GT(tokens.size(), 50u);
}

TEST(UserUniverseTest, MatchTypesWildcard) {
  UserUniverse users;
  UserUniverseConfig c;
  c.num_user_types = 200;
  ASSERT_TRUE(users.Build(c, 4).ok());
  const auto all = users.MatchTypes(-1, -1, -1);
  EXPECT_EQ(all.size(), 200u);
  const auto female = users.MatchTypes(0, -1, -1);
  EXPECT_GT(female.size(), 0u);
  EXPECT_LT(female.size(), all.size());
  for (uint32_t ut : female) EXPECT_EQ(users.type(ut).gender, 0);
  const auto narrow = users.MatchTypes(1, 2, 1);
  for (uint32_t ut : narrow) {
    EXPECT_EQ(users.type(ut).gender, 1);
    EXPECT_EQ(users.type(ut).age_bucket, 2);
    EXPECT_EQ(users.type(ut).purchase_level, 1);
  }
}

TEST(UserUniverseTest, GenderShapesPreferences) {
  UserUniverse users;
  UserUniverseConfig c;
  c.num_user_types = 400;
  const uint32_t kTops = 12;
  ASSERT_TRUE(users.Build(c, kTops).ok());
  // Average first-preference histogram per gender should differ.
  std::vector<std::vector<int>> hist(kNumGenders, std::vector<int>(kTops, 0));
  for (uint32_t ut = 0; ut < users.num_types(); ++ut) {
    ++hist[users.type(ut).gender][users.type(ut).preferred_tops[0]];
  }
  int diff = 0;
  for (uint32_t t = 0; t < kTops; ++t) diff += std::abs(hist[0][t] - hist[1][t]);
  EXPECT_GT(diff, 40);
}

// --------------------------- session generator ---------------------------

class SessionFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_.Build(SmallCatalogConfig()).ok());
    UserUniverseConfig uc;
    uc.num_user_types = 120;
    ASSERT_TRUE(users_.Build(uc, catalog_.num_tops()).ok());
  }
  ItemCatalog catalog_;
  UserUniverse users_;
};

TEST_F(SessionFixture, SessionsWellFormed) {
  SessionModelConfig mc;
  SessionGenerator gen(&catalog_, &users_, mc);
  const auto sessions = gen.GenerateSessions(500);
  ASSERT_EQ(sessions.size(), 500u);
  for (const Session& s : sessions) {
    EXPECT_GE(s.items.size(), mc.min_len);
    EXPECT_LE(s.items.size(), mc.max_len);
    EXPECT_LT(s.user_type, users_.num_types());
    for (uint32_t it : s.items) EXPECT_LT(it, catalog_.num_items());
  }
}

TEST_F(SessionFixture, DeterministicBySeed) {
  SessionModelConfig mc;
  SessionGenerator g1(&catalog_, &users_, mc);
  SessionGenerator g2(&catalog_, &users_, mc);
  const auto a = g1.GenerateSessions(50);
  const auto b = g2.GenerateSessions(50);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].user_type, b[i].user_type);
    EXPECT_EQ(a[i].items, b[i].items);
  }
}

TEST_F(SessionFixture, CoClickGraphSharedAcrossSessionSeeds) {
  SessionModelConfig m1, m2;
  m2.seed = m1.seed + 1234567;
  SessionGenerator g1(&catalog_, &users_, m1);
  SessionGenerator g2(&catalog_, &users_, m2);
  for (uint32_t item = 0; item < catalog_.num_items(); item += 17) {
    EXPECT_EQ(g1.Successors(item), g2.Successors(item));
  }
}

TEST_F(SessionFixture, SuccessorsStayInLeaf) {
  SessionModelConfig mc;
  SessionGenerator gen(&catalog_, &users_, mc);
  for (uint32_t item = 0; item < catalog_.num_items(); ++item) {
    const auto& succ = gen.Successors(item);
    EXPECT_GE(succ.size(), 1u);
    EXPECT_LE(succ.size(), mc.successors_per_item);
    std::set<uint32_t> distinct(succ.begin(), succ.end());
    EXPECT_EQ(distinct.size(), succ.size());
    for (uint32_t s : succ) {
      EXPECT_NE(s, item);
      EXPECT_EQ(catalog_.meta(s).leaf_category, catalog_.meta(item).leaf_category);
    }
  }
}

TEST_F(SessionFixture, MostTransitionsFollowGroundTruthEdges) {
  SessionModelConfig mc;
  SessionGenerator gen(&catalog_, &users_, mc);
  const auto sessions = gen.GenerateSessions(800);
  uint64_t on_edge = 0, total = 0;
  for (const Session& s : sessions) {
    for (size_t i = 0; i + 1 < s.items.size(); ++i) {
      const auto& succ = gen.Successors(s.items[i]);
      const auto& pred = gen.Predecessors(s.items[i]);
      const uint32_t next = s.items[i + 1];
      const bool edge =
          std::find(succ.begin(), succ.end(), next) != succ.end() ||
          std::find(pred.begin(), pred.end(), next) != pred.end();
      on_edge += edge;
      ++total;
    }
  }
  // stay_in_leaf_prob of transitions should follow graph edges.
  EXPECT_GT(static_cast<double>(on_edge) / total, 0.8);
}

TEST_F(SessionFixture, WithinLeafDistributionMatchesMonteCarlo) {
  SessionModelConfig mc;
  SessionGenerator gen(&catalog_, &users_, mc);
  const uint32_t cur = catalog_.LeafItems(3)[5];
  const uint32_t ut = 17;
  const auto dist = gen.WithinLeafNextDistribution(cur, ut);
  ASSERT_FALSE(dist.empty());
  double mass = 0.0;
  for (const auto& [item, p] : dist) mass += p;
  EXPECT_NEAR(mass, mc.stay_in_leaf_prob, 1e-9);

  // Monte Carlo of SampleNext restricted to same-leaf outcomes.
  Rng rng(42);
  std::unordered_map<uint32_t, int> counts;
  const int kSamples = 200000;
  int in_leaf = 0;
  for (int i = 0; i < kSamples; ++i) {
    const uint32_t nxt = gen.SampleNext(cur, ut, rng);
    if (catalog_.meta(nxt).leaf_category == catalog_.meta(cur).leaf_category) {
      ++counts[nxt];
      ++in_leaf;
    }
  }
  // Note: leaf-switch restarts can land back in the same leaf, inflating
  // in-leaf mass slightly above stay_in_leaf_prob; compare shapes on the
  // top entries instead of exact mass.
  for (size_t i = 0; i < std::min<size_t>(5, dist.size()); ++i) {
    const double expected = dist[i].second * kSamples;
    if (expected < 200) continue;
    EXPECT_NEAR(counts[dist[i].first], expected, 0.25 * expected + 60)
        << "item " << dist[i].first;
  }
  EXPECT_GE(in_leaf, static_cast<int>(kSamples * mc.stay_in_leaf_prob * 0.95));
}

TEST_F(SessionFixture, AsymmetryRateIsSubstantial) {
  SessionModelConfig mc;
  SessionGenerator gen(&catalog_, &users_, mc);
  const auto sessions = gen.GenerateSessions(4000);
  const double rate = SessionGenerator::MeasureAsymmetryRate(sessions);
  // The paper quotes ~20% of pairs significantly asymmetric; our directed
  // co-click world is far above that floor.
  EXPECT_GT(rate, 0.2);
  EXPECT_LE(rate, 1.0);
}

TEST_F(SessionFixture, DemographicsShiftSuccessorChoice) {
  SessionModelConfig mc;
  mc.demo_affinity = 3.0;
  SessionGenerator gen(&catalog_, &users_, mc);
  // Find two user types with different purchase levels and compare the
  // ground-truth next distribution of the same item.
  int ut_low = -1, ut_high = -1;
  for (uint32_t ut = 0; ut < users_.num_types(); ++ut) {
    if (users_.type(ut).purchase_level == 0 && ut_low < 0) ut_low = ut;
    if (users_.type(ut).purchase_level == 2 && ut_high < 0) ut_high = ut;
  }
  ASSERT_GE(ut_low, 0);
  ASSERT_GE(ut_high, 0);
  int differing = 0;
  for (uint32_t item = 0; item < catalog_.num_items(); item += 7) {
    const auto a = gen.WithinLeafNextDistribution(item, ut_low);
    const auto b = gen.WithinLeafNextDistribution(item, ut_high);
    if (!a.empty() && !b.empty() && a[0].first != b[0].first) ++differing;
  }
  EXPECT_GT(differing, 5);
}

// --------------------------- dataset ---------------------------

DatasetSpec SmallSpec() {
  DatasetSpec spec;
  spec.name = "UnitTest";
  spec.catalog = SmallCatalogConfig();
  spec.users.num_user_types = 120;
  spec.num_train_sessions = 800;
  spec.num_test_sessions = 100;
  return spec;
}

TEST(DatasetTest, GenerateAndStats) {
  auto ds = SyntheticDataset::Generate(SmallSpec());
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds->train_sessions().size(), 800u);
  EXPECT_EQ(ds->test_sessions().size(), 100u);
  // Train and test must come from different draws.
  EXPECT_NE(ds->train_sessions()[0].items, ds->test_sessions()[0].items);

  const DatasetStats stats = ComputeDatasetStats(*ds, 4, 20);
  EXPECT_GT(stats.num_items, 100u);
  EXPECT_LE(stats.num_items, 600u);
  EXPECT_EQ(stats.num_si_kinds, 8u);
  EXPECT_GT(stats.num_user_types, 10u);
  // tokens = clicks * 9 + sessions.
  uint64_t clicks = 0;
  for (const auto& s : ds->train_sessions()) clicks += s.items.size();
  EXPECT_EQ(stats.num_tokens, clicks * 9 + 800);
  EXPECT_EQ(stats.num_training_pairs, stats.num_positive_pairs * 21);
  EXPECT_GT(stats.asymmetry_rate, 0.1);
}

TEST(DatasetTest, SessionTextRoundTrip) {
  auto ds = SyntheticDataset::Generate(SmallSpec());
  ASSERT_TRUE(ds.ok());
  const std::string path = ::testing::TempDir() + "/sessions.txt";
  ASSERT_TRUE(
      WriteSessionsText(ds->train_sessions(), ds->users(), path).ok());
  auto loaded = ReadSessionsText(ds->users(), path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), ds->train_sessions().size());
  for (size_t i = 0; i < loaded->size(); ++i) {
    EXPECT_EQ((*loaded)[i].items, ds->train_sessions()[i].items);
    // User types round-trip through tokens; types with identical tokens may
    // alias, so compare tokens.
    EXPECT_EQ(ds->users().TypeToken((*loaded)[i].user_type),
              ds->users().TypeToken(ds->train_sessions()[i].user_type));
  }
  std::remove(path.c_str());
}

TEST(DatasetTest, ReadRejectsCorruptFiles) {
  auto ds = SyntheticDataset::Generate(SmallSpec());
  ASSERT_TRUE(ds.ok());
  const std::string path = ::testing::TempDir() + "/bad_sessions.txt";

  {  // missing tab
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("no_tab_here 1 2 3\n", f);
    std::fclose(f);
    EXPECT_EQ(ReadSessionsText(ds->users(), path).status().code(),
              StatusCode::kCorruption);
  }
  {  // unknown user type
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("usertype_X_unknown\t1 2 3\n", f);
    std::fclose(f);
    EXPECT_EQ(ReadSessionsText(ds->users(), path).status().code(),
              StatusCode::kCorruption);
  }
  {  // bad item id
    std::FILE* f = std::fopen(path.c_str(), "w");
    const std::string line = ds->users().TypeToken(0) + "\t1 2x 3\n";
    std::fputs(line.c_str(), f);
    std::fclose(f);
    EXPECT_EQ(ReadSessionsText(ds->users(), path).status().code(),
              StatusCode::kCorruption);
  }
  EXPECT_EQ(ReadSessionsText(ds->users(), "/nonexistent/file").status().code(),
            StatusCode::kIOError);
  std::remove(path.c_str());
}

TEST(DatasetTest, WriteFailureLeavesNoPartialFile) {
  auto ds = SyntheticDataset::Generate(SmallSpec());
  ASSERT_TRUE(ds.ok());
  // An unwritable destination is a typed I/O error, and nothing appears
  // under the target name (the atomic temp-then-rename never commits).
  const std::string path = "/nonexistent_dir/sessions.txt";
  EXPECT_EQ(
      WriteSessionsText(ds->train_sessions(), ds->users(), path).code(),
      StatusCode::kIOError);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_EQ(f, nullptr);
  if (f != nullptr) std::fclose(f);
}

}  // namespace
}  // namespace sisg
