#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "common/alias_table.h"
#include "common/env_util.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/top_k.h"

namespace sisg {
namespace {

// --------------------------- Status ---------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IOError("").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Corruption("").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Unimplemented("").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::Internal("boom");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  SISG_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UseHalf(3, &out).code(), StatusCode::kInvalidArgument);
}

// --------------------------- Rng ---------------------------

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformDoubleInRange) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, UniformU64Bounds) {
  Rng rng(9);
  for (uint64_t n : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) ASSERT_LT(rng.UniformU64(n), n);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.Gaussian();
  const MeanVar mv = ComputeMeanVar(xs);
  EXPECT_NEAR(mv.mean, 0.0, 0.05);
  EXPECT_NEAR(mv.var, 1.0, 0.1);
}

TEST(RngTest, ZipfHeadHeavier) {
  Rng rng(17);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) {
    ++counts[rng.Zipf(10, 1.5)];
  }
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[4]);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(19);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto orig = v;
  rng.Shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
}

// --------------------------- AliasTable ---------------------------

TEST(AliasTableTest, RejectsBadInput) {
  AliasTable t;
  EXPECT_FALSE(t.Build({}).ok());
  EXPECT_FALSE(t.Build({0.0, 0.0}).ok());
  EXPECT_FALSE(t.Build({1.0, -0.5}).ok());
}

TEST(AliasTableTest, SingleElement) {
  AliasTable t;
  ASSERT_TRUE(t.Build({3.0}).ok());
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(t.Sample(rng), 0u);
}

struct AliasCase {
  std::vector<double> weights;
  uint64_t seed;
};

class AliasTableDistribution : public ::testing::TestWithParam<AliasCase> {};

TEST_P(AliasTableDistribution, MatchesTargetWithinChiSquare) {
  const AliasCase& c = GetParam();
  AliasTable t;
  ASSERT_TRUE(t.Build(c.weights).ok());
  Rng rng(c.seed);
  const int kSamples = 200000;
  std::vector<int> counts(c.weights.size(), 0);
  for (int i = 0; i < kSamples; ++i) ++counts[t.Sample(rng)];

  double total_w = 0.0;
  for (double w : c.weights) total_w += w;
  double chi2 = 0.0;
  for (size_t i = 0; i < c.weights.size(); ++i) {
    const double expected = kSamples * c.weights[i] / total_w;
    if (expected < 1.0) {
      EXPECT_LE(counts[i], 10);
      continue;
    }
    const double d = counts[i] - expected;
    chi2 += d * d / expected;
  }
  // Very generous chi-square bound: ~5x dof.
  EXPECT_LT(chi2, 5.0 * static_cast<double>(c.weights.size()));
  // Normalized probabilities should be exact.
  for (size_t i = 0; i < c.weights.size(); ++i) {
    EXPECT_NEAR(t.Probability(static_cast<uint32_t>(i)),
                c.weights[i] / total_w, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, AliasTableDistribution,
    ::testing::Values(AliasCase{{1.0, 1.0, 1.0, 1.0}, 1},
                      AliasCase{{10.0, 1.0, 0.1}, 2},
                      AliasCase{{0.5, 0.0, 0.5}, 3},
                      AliasCase{{1e-6, 1.0, 1e6}, 4},
                      AliasCase{{5.0, 4.0, 3.0, 2.0, 1.0, 0.5, 0.25}, 5}));

TEST(AliasTableTest, LargeZipfBuild) {
  std::vector<double> w(100000);
  for (size_t i = 0; i < w.size(); ++i) w[i] = 1.0 / std::pow(i + 1.0, 0.75);
  AliasTable t;
  ASSERT_TRUE(t.Build(w).ok());
  Rng rng(6);
  uint64_t head = 0;
  const int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) head += t.Sample(rng) < 100;
  EXPECT_GT(head, static_cast<uint64_t>(kSamples) / 20);  // head is hot
}

// --------------------------- ThreadPool ---------------------------

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.ParallelFor(64, [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

// --------------------------- TopKSelector ---------------------------

TEST(TopKTest, KeepsHighestScores) {
  TopKSelector sel(3);
  sel.Push(1.0f, 1);
  sel.Push(5.0f, 5);
  sel.Push(3.0f, 3);
  sel.Push(2.0f, 2);
  sel.Push(4.0f, 4);
  const auto out = sel.Take();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].id, 5u);
  EXPECT_EQ(out[1].id, 4u);
  EXPECT_EQ(out[2].id, 3u);
}

TEST(TopKTest, FewerThanK) {
  TopKSelector sel(10);
  sel.Push(2.0f, 7);
  sel.Push(1.0f, 9);
  const auto out = sel.Take();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id, 7u);
}

TEST(TopKTest, ZeroK) {
  TopKSelector sel(0);
  sel.Push(1.0f, 1);
  EXPECT_TRUE(sel.Take().empty());
}

TEST(TopKTest, TieBreaksById) {
  TopKSelector sel(2);
  sel.Push(1.0f, 9);
  sel.Push(1.0f, 3);
  sel.Push(1.0f, 6);
  const auto out = sel.Take();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id, 3u);
}

TEST(TopKTest, ThresholdIsMinusInfinityUntilFull) {
  // Regression: Threshold() used to return 0.0 while the heap was filling,
  // which let scan kernels prune negative-scored candidates before k results
  // existed. All-negative corpora must still fill the selector.
  TopKSelector sel(3);
  EXPECT_EQ(sel.Threshold(), -std::numeric_limits<float>::infinity());
  sel.Push(-5.0f, 1);
  sel.Push(-2.0f, 2);
  EXPECT_EQ(sel.Threshold(), -std::numeric_limits<float>::infinity());
  sel.Push(-9.0f, 3);
  EXPECT_EQ(sel.Threshold(), -9.0f);  // full: worst kept score
  sel.Push(-1.0f, 4);
  EXPECT_EQ(sel.Threshold(), -5.0f);
}

TEST(TopKTest, AllNegativeScoresKeptViaThresholdPruning) {
  // The pruning pattern every scan kernel uses: push only when the score
  // beats Threshold(). With the -inf semantics this must keep the k best
  // even when every score is negative.
  TopKSelector sel(4);
  const float scores[] = {-3.5f, -0.5f, -7.0f, -1.0f, -2.0f, -6.0f};
  for (uint32_t i = 0; i < 6; ++i) {
    if (scores[i] > sel.Threshold()) sel.Push(scores[i], i);
  }
  const auto out = sel.Take();
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].id, 1u);  // -0.5
  EXPECT_EQ(out[1].id, 3u);  // -1.0
  EXPECT_EQ(out[2].id, 4u);  // -2.0
  EXPECT_EQ(out[3].id, 0u);  // -3.5
}

TEST(TopKTest, ZeroKThresholdRejectsEverything) {
  TopKSelector sel(0);
  EXPECT_EQ(sel.Threshold(), std::numeric_limits<float>::infinity());
}

class TopKProperty : public ::testing::TestWithParam<int> {};

TEST_P(TopKProperty, MatchesFullSort) {
  const int k = GetParam();
  Rng rng(100 + k);
  std::vector<ScoredId> all;
  TopKSelector sel(static_cast<size_t>(k));
  for (uint32_t i = 0; i < 500; ++i) {
    const float s = rng.UniformFloat();
    all.push_back({s, i});
    sel.Push(s, i);
  }
  std::sort(all.begin(), all.end(), [](const ScoredId& a, const ScoredId& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  });
  const auto got = sel.Take();
  ASSERT_EQ(got.size(), std::min<size_t>(k, all.size()));
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, all[i].id) << "rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, TopKProperty, ::testing::Values(1, 5, 17, 100, 499));

// --------------------------- strings ---------------------------

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, SplitWhitespace) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"x", "y"}, "-"), "x-y");
  EXPECT_EQ(Join({}, "-"), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("leaf_category_12", "leaf_"));
  EXPECT_FALSE(StartsWith("leaf", "leaf_"));
  EXPECT_TRUE(EndsWith("model.emb", ".emb"));
  EXPECT_FALSE(EndsWith("emb", ".emb"));
}

TEST(StringUtilTest, FormatWithCommas) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(25549673), "25,549,673");
}

// --------------------------- math ---------------------------

TEST(MathTest, DotAxpyScale) {
  float a[4] = {1, 2, 3, 4};
  float b[4] = {4, 3, 2, 1};
  EXPECT_FLOAT_EQ(Dot(a, b, 4), 20.0f);
  Axpy(2.0f, a, b, 4);
  EXPECT_FLOAT_EQ(b[0], 6.0f);
  EXPECT_FLOAT_EQ(b[3], 9.0f);
  Scale(0.5f, a, 4);
  EXPECT_FLOAT_EQ(a[3], 2.0f);
  Zero(a, 4);
  EXPECT_FLOAT_EQ(L2Norm(a, 4), 0.0f);
}

TEST(MathTest, CosineSimilarity) {
  float a[2] = {1, 0};
  float b[2] = {0, 1};
  float c[2] = {2, 0};
  float z[2] = {0, 0};
  EXPECT_NEAR(CosineSimilarity(a, b, 2), 0.0f, 1e-6);
  EXPECT_NEAR(CosineSimilarity(a, c, 2), 1.0f, 1e-6);
  EXPECT_FLOAT_EQ(CosineSimilarity(a, z, 2), 0.0f);
}

TEST(MathTest, SigmoidTableMatchesExact) {
  SigmoidTable table;
  for (double x = -5.9; x < 5.9; x += 0.37) {
    EXPECT_NEAR(table.Sigmoid(static_cast<float>(x)), SigmoidExact(x), 0.01)
        << "x=" << x;
  }
  EXPECT_FLOAT_EQ(table.Sigmoid(100.0f), 1.0f);
  EXPECT_FLOAT_EQ(table.Sigmoid(-100.0f), 0.0f);
}

// Regression: for x just below max_exp, (x + max_exp) * inv_step can round
// past the last bucket — the index must clamp instead of reading (or
// crashing) out of bounds. Exercised across table granularities.
TEST(MathTest, SigmoidTableBoundaryIndexClamped) {
  for (int size : {1024, 1 << 16}) {
    const SigmoidTable table(size);
    const float boundaries[] = {
        std::nextafter(6.0f, 0.0f), std::nextafter(-6.0f, 0.0f),
        5.9999995f, -5.9999995f, 6.0f, -6.0f};
    for (float x : boundaries) {
      const float y = table.Sigmoid(x);
      EXPECT_GE(y, 0.0f) << "size=" << size << " x=" << x;
      EXPECT_LE(y, 1.0f) << "size=" << size << " x=" << x;
      EXPECT_NEAR(y, SigmoidExact(x), 0.01) << "size=" << size << " x=" << x;
    }
  }
}

// --------------------------- flags ---------------------------

TEST(FlagParserTest, ParsesAllForms) {
  // Note the greedy rule: `--flag token` binds the token as the flag's
  // value, so bare boolean flags must use `=` or come last.
  const char* argv[] = {"prog",       "--alpha=0.5", "--count", "7",
                        "positional", "pos2",        "--verbose"};
  FlagParser flags;
  ASSERT_TRUE(flags.Parse(7, argv).ok());
  EXPECT_DOUBLE_EQ(flags.GetDouble("alpha", 0.0), 0.5);
  EXPECT_EQ(flags.GetInt64("count", 0), 7);
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"positional", "pos2"}));
}

TEST(FlagParserTest, GreedyValueBinding) {
  const char* argv[] = {"prog", "--verbose", "pos"};
  FlagParser flags;
  ASSERT_TRUE(flags.Parse(3, argv).ok());
  // "pos" was consumed as the value of --verbose.
  EXPECT_EQ(flags.GetString("verbose", ""), "pos");
  EXPECT_TRUE(flags.positional().empty());
}

TEST(FlagParserTest, DefaultsWhenAbsentOrMalformed) {
  const char* argv[] = {"prog", "--n=abc"};
  FlagParser flags;
  ASSERT_TRUE(flags.Parse(2, argv).ok());
  EXPECT_EQ(flags.GetInt64("n", 11), 11);      // unparsable -> default
  EXPECT_EQ(flags.GetInt64("missing", 3), 3);  // absent -> default
  EXPECT_EQ(flags.GetString("n", ""), "abc");  // raw string still available
  EXPECT_FALSE(flags.GetBool("missing", false));
}

TEST(FlagParserTest, KnownFlagSchemaRejectsUnknown) {
  const char* argv[] = {"prog", "--good=1", "--typo=2"};
  FlagParser flags;
  EXPECT_FALSE(flags.Parse(3, argv, {"good"}).ok());
  EXPECT_TRUE(flags.Parse(3, argv, {"good", "typo"}).ok());
  EXPECT_TRUE(flags.Parse(3, argv).ok());  // empty schema accepts anything
}

TEST(FlagParserTest, BoolForms) {
  const char* argv[] = {"prog", "--a=true", "--b=1", "--c=yes", "--d=false",
                        "--e"};
  FlagParser flags;
  ASSERT_TRUE(flags.Parse(6, argv).ok());
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_TRUE(flags.GetBool("b", false));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_FALSE(flags.GetBool("d", true));
  EXPECT_TRUE(flags.GetBool("e", false));  // bare flag
}

TEST(FlagParserTest, FlagFollowedByFlagIsBoolean) {
  const char* argv[] = {"prog", "--x", "--y", "value"};
  FlagParser flags;
  ASSERT_TRUE(flags.Parse(4, argv).ok());
  EXPECT_TRUE(flags.GetBool("x", false));
  EXPECT_EQ(flags.GetString("y", ""), "value");
}

TEST(FlagParserTest, EmptyNameRejected) {
  const char* argv[] = {"prog", "--=v"};
  FlagParser flags;
  EXPECT_FALSE(flags.Parse(2, argv).ok());
}

// --------------------------- env ---------------------------

TEST(EnvUtilTest, DefaultsAndParsing) {
  ::unsetenv("SISG_TEST_KNOB");
  EXPECT_EQ(GetEnvInt64("SISG_TEST_KNOB", 7), 7);
  ::setenv("SISG_TEST_KNOB", "42", 1);
  EXPECT_EQ(GetEnvInt64("SISG_TEST_KNOB", 7), 42);
  ::setenv("SISG_TEST_KNOB", "2.5", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("SISG_TEST_KNOB", 0.0), 2.5);
  ::setenv("SISG_TEST_KNOB", "junk", 1);
  EXPECT_EQ(GetEnvInt64("SISG_TEST_KNOB", 7), 7);
  EXPECT_EQ(GetEnvString("SISG_TEST_KNOB", ""), "junk");
  ::unsetenv("SISG_TEST_KNOB");
}

}  // namespace
}  // namespace sisg
