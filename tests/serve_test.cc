// Serving-path suite: the coalesced micro-batch scan must be bit-identical
// to the per-query path (fp32 and int8), the batcher's admission control
// must bound memory and reply BUSY rather than drop silently, and the full
// loopback server must answer byte-for-byte what an offline engine loaded
// from the same artifacts answers — across fp32, int8, and mmap-arena
// serving modes. Plus the drain and signal-flush contracts.

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/matching_engine.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "serve/batcher.h"
#include "serve/client.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "serve/wire.h"

namespace sisg {
namespace {

MatchingEngine BuildRandomEngine(uint32_t items, uint32_t dim,
                                 uint64_t seed = 99) {
  Rng rng(seed);
  std::vector<float> in(static_cast<size_t>(items) * dim);
  for (float& v : in) v = static_cast<float>(rng.Gaussian());
  MatchingEngine engine;
  EXPECT_TRUE(
      engine.Build(std::move(in), {}, items, dim, SimilarityMode::kCosineInput)
          .ok());
  return engine;
}

void ExpectBitIdentical(const std::vector<ScoredId>& a,
                        const std::vector<ScoredId>& b,
                        const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << what << " rank " << i;
    // Bitwise float comparison: "indistinguishable from the offline path"
    // means the same bits, not approximately the same value.
    uint32_t abits, bbits;
    std::memcpy(&abits, &a[i].score, 4);
    std::memcpy(&bbits, &b[i].score, 4);
    EXPECT_EQ(abits, bbits) << what << " rank " << i;
  }
}

uint64_t CounterVal(const obs::MetricsSnapshot& s, const std::string& name) {
  auto it = s.counters.find(name);
  return it == s.counters.end() ? 0 : it->second;
}

double GaugeVal(const obs::MetricsSnapshot& s, const std::string& name) {
  auto it = s.gauges.find(name);
  return it == s.gauges.end() ? 0.0 : it->second;
}

// --- Tentpole: coalesced batch scan == per-query scan, bit for bit. ---

TEST(CoalescedScanTest, Fp32BitIdenticalToPerQuery) {
  MatchingEngine engine = BuildRandomEngine(500, 24);
  std::vector<uint32_t> items, ks;
  for (uint32_t i = 0; i < 500; i += 3) {
    items.push_back(i);
    ks.push_back(5 + i % 13);
  }
  const auto batched =
      engine.QueryBatchCoalesced(items.data(), ks.data(), items.size());
  ASSERT_EQ(batched.size(), items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    ExpectBitIdentical(batched[i], engine.Query(items[i], ks[i]),
                       "item " + std::to_string(items[i]));
  }
}

TEST(CoalescedScanTest, Fp32BitIdenticalWithPoolSharding) {
  MatchingEngine engine = BuildRandomEngine(300, 16);
  std::vector<uint32_t> items, ks;
  for (uint32_t i = 0; i < 300; i += 2) {
    items.push_back(i);
    ks.push_back(10);
  }
  ThreadPool pool(3);
  const auto batched =
      engine.QueryBatchCoalesced(items.data(), ks.data(), items.size(), &pool);
  for (size_t i = 0; i < items.size(); ++i) {
    ExpectBitIdentical(batched[i], engine.Query(items[i], ks[i]),
                       "pooled item " + std::to_string(items[i]));
  }
}

TEST(CoalescedScanTest, Int8BitIdenticalToPerQuery) {
  MatchingEngine engine = BuildRandomEngine(400, 32);
  ASSERT_TRUE(engine.EnableInt8().ok());
  ASSERT_EQ(engine.quant_mode(), QuantMode::kInt8);
  std::vector<uint32_t> items, ks;
  for (uint32_t i = 0; i < 400; i += 5) {
    items.push_back(i);
    ks.push_back(8);
  }
  const auto batched =
      engine.QueryBatchCoalesced(items.data(), ks.data(), items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    ExpectBitIdentical(batched[i], engine.Query(items[i], ks[i]),
                       "int8 item " + std::to_string(items[i]));
  }
}

TEST(CoalescedScanTest, HandlesUnknownItemsAndZeroK) {
  MatchingEngine engine = BuildRandomEngine(100, 8);
  const std::vector<uint32_t> items = {5, 100000, 7, 9};
  const std::vector<uint32_t> ks = {10, 10, 0, 3};
  const auto batched =
      engine.QueryBatchCoalesced(items.data(), ks.data(), items.size());
  ASSERT_EQ(batched.size(), 4u);
  EXPECT_FALSE(batched[0].empty());
  EXPECT_TRUE(batched[1].empty());  // unknown item
  EXPECT_TRUE(batched[2].empty());  // k == 0
  EXPECT_EQ(batched[3].size(), 3u);
}

// --- Batcher: coalescing, admission control, drain. ---

struct CallbackSink {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::vector<ScoredId>> results;
  size_t expected = 0;

  serve::QueryBatcher::Callback Make(size_t slot) {
    return [this, slot](serve::WireStatus, uint64_t,
                        std::vector<ScoredId> r) {
      std::lock_guard<std::mutex> lock(mu);
      results[slot] = std::move(r);
      --expected;
      if (expected == 0) cv.notify_all();
    };
  }
  bool WaitAll() {
    std::unique_lock<std::mutex> lock(mu);
    return cv.wait_for(lock, std::chrono::seconds(10),
                       [&] { return expected == 0; });
  }
};

TEST(QueryBatcherTest, CoalescesQueuedRequestsIntoOneBatch) {
  obs::EnableMetrics(true);
  MatchingEngine engine = BuildRandomEngine(200, 16);
  serve::BatchOptions opts;
  opts.max_batch = 16;
  opts.max_wait_us = 0;  // flush whatever is queued, immediately
  serve::ModelRegistry registry;
  registry.PublishBorrowed(&engine, "test");
  serve::QueryBatcher batcher(&registry, opts);

  const auto before = obs::MetricsRegistry::Global().Snapshot();
  CallbackSink sink;
  sink.results.resize(8);
  sink.expected = 8;
  // Submit before Start: the queue fills deterministically, then the first
  // dispatch pops all eight as one coalesced batch.
  for (uint32_t i = 0; i < 8; ++i) {
    ASSERT_EQ(batcher.Submit(i * 10, 6, sink.Make(i)),
              serve::AdmitResult::kAccepted);
  }
  EXPECT_EQ(batcher.queue_depth(), 8u);
  batcher.Start();
  ASSERT_TRUE(sink.WaitAll());
  batcher.Drain();

  for (uint32_t i = 0; i < 8; ++i) {
    ExpectBitIdentical(sink.results[i], engine.Query(i * 10, 6),
                       "batched item " + std::to_string(i * 10));
  }
  const auto after = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(CounterVal(after, "serve.batches") -
                CounterVal(before, "serve.batches"),
            1u);
  EXPECT_EQ(GaugeVal(after, "serve.queue_depth"), 0.0);
}

TEST(QueryBatcherTest, FullQueueRepliesBusyNeverBuffersUnboundedly) {
  obs::EnableMetrics(true);
  MatchingEngine engine = BuildRandomEngine(100, 8);
  serve::BatchOptions opts;
  opts.queue_capacity = 4;
  serve::ModelRegistry registry;
  registry.PublishBorrowed(&engine, "test");
  serve::QueryBatcher batcher(&registry, opts);  // never started: queue holds

  const auto before = obs::MetricsRegistry::Global().Snapshot();
  CallbackSink sink;
  sink.results.resize(4);
  sink.expected = 4;
  for (uint32_t i = 0; i < 4; ++i) {
    ASSERT_EQ(batcher.Submit(i, 5, sink.Make(i)),
              serve::AdmitResult::kAccepted);
  }
  int rejected = 0;
  for (uint32_t i = 0; i < 3; ++i) {
    if (batcher.Submit(50 + i, 5,
                       [](serve::WireStatus, uint64_t, std::vector<ScoredId>) {
                         FAIL()
                             << "rejected submit must never invoke its "
                                "callback";
                       }) == serve::AdmitResult::kBusy) {
      ++rejected;
    }
  }
  EXPECT_EQ(rejected, 3);
  EXPECT_EQ(batcher.queue_depth(), 4u);

  // Drain without Start still flushes the accepted four through the scan.
  batcher.Drain();
  ASSERT_TRUE(sink.WaitAll());
  for (uint32_t i = 0; i < 4; ++i) {
    ExpectBitIdentical(sink.results[i], engine.Query(i, 5),
                       "drained item " + std::to_string(i));
  }
  const auto after = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(CounterVal(after, "serve.dropped") -
                CounterVal(before, "serve.dropped"),
            3u);
  EXPECT_EQ(batcher.Submit(
                1, 5, [](serve::WireStatus, uint64_t, std::vector<ScoredId>) {}),
            serve::AdmitResult::kShuttingDown);
}

TEST(QueryBatcherTest, MaxBatchZeroIsClampedAndStillDispatches) {
  // max_batch = 0 reaches the batcher through the unvalidated --max_batch
  // flag; it must behave as batch-of-1, not busy-spin taking zero items
  // (which also made Drain join a thread that never exits).
  MatchingEngine engine = BuildRandomEngine(100, 8);
  serve::BatchOptions opts;
  opts.max_batch = 0;
  opts.max_wait_us = 0;
  serve::ModelRegistry registry;
  registry.PublishBorrowed(&engine, "test");
  serve::QueryBatcher batcher(&registry, opts);
  EXPECT_EQ(batcher.options().max_batch, 1u);
  batcher.Start();
  CallbackSink sink;
  sink.results.resize(3);
  sink.expected = 3;
  for (uint32_t i = 0; i < 3; ++i) {
    ASSERT_EQ(batcher.Submit(i * 7, 4, sink.Make(i)),
              serve::AdmitResult::kAccepted);
  }
  ASSERT_TRUE(sink.WaitAll());
  batcher.Drain();
  for (uint32_t i = 0; i < 3; ++i) {
    ExpectBitIdentical(sink.results[i], engine.Query(i * 7, 4),
                       "clamped-batch item " + std::to_string(i * 7));
  }
}

// --- Loopback end-to-end: server == offline engine, per serving mode. ---

class LoopbackFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    prefix_ = new std::string(::testing::TempDir() + "serve_e2e");
    MatchingEngine engine = BuildRandomEngine(300, 24, /*seed=*/7);
    ASSERT_TRUE(engine.SaveArena(*prefix_ + ".arena").ok());
    ASSERT_TRUE(engine.EnableInt8().ok());
    ASSERT_TRUE(engine.SaveInt8(*prefix_ + ".qarena").ok());
  }
  static void TearDownTestSuite() {
    std::remove((*prefix_ + ".arena").c_str());
    std::remove((*prefix_ + ".qarena").c_str());
    delete prefix_;
    prefix_ = nullptr;
  }

  /// Loads an engine from the frozen artifacts in the requested mode.
  static MatchingEngine LoadEngine(bool int8, bool mmap) {
    MatchingEngine engine;
    EXPECT_TRUE(engine.LoadArena(*prefix_ + ".arena", mmap).ok());
    if (int8) {
      EXPECT_TRUE(engine.EnableInt8FromFile(*prefix_ + ".qarena", mmap).ok());
      EXPECT_EQ(engine.quant_mode(), QuantMode::kInt8);
    }
    return engine;
  }

  /// The satellite contract: every item's served answer is bit-identical to
  /// the offline engine's answer on the same artifacts.
  static void RunMode(bool int8, bool mmap, const std::string& what) {
    MatchingEngine offline = LoadEngine(int8, mmap);
    MatchingEngine served = LoadEngine(int8, mmap);
    serve::ServerOptions opts;
    opts.io_threads = 1;
    opts.batch.max_wait_us = 100;
    serve::ServeServer server(&served, opts);
    ASSERT_TRUE(server.Start().ok());

    auto client = serve::ServeClient::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    ASSERT_TRUE(client->Ping().ok());
    for (uint32_t item = 0; item < offline.num_items(); item += 7) {
      serve::QueryResponse resp;
      ASSERT_TRUE(client->Query(item, 10, &resp).ok());
      ASSERT_EQ(resp.status, serve::WireStatus::kOk);
      ExpectBitIdentical(resp.results, offline.Query(item, 10),
                         what + " item " + std::to_string(item));
    }
    client->Close();
    server.Shutdown();
  }

  static std::string* prefix_;
};

std::string* LoopbackFixture::prefix_ = nullptr;

TEST_F(LoopbackFixture, Fp32ServedEqualsOffline) {
  RunMode(/*int8=*/false, /*mmap=*/false, "fp32");
}

TEST_F(LoopbackFixture, Int8ServedEqualsOffline) {
  RunMode(/*int8=*/true, /*mmap=*/false, "int8");
}

TEST_F(LoopbackFixture, MmapArenaServedEqualsOffline) {
  RunMode(/*int8=*/false, /*mmap=*/true, "mmap");
}

TEST(ServeServerTest, HugeKIsClampedToWirePayloadBound) {
  // A response frame maxes out at kMaxResultsPerResponse results; a larger
  // k must be served clamped, never answered with a frame the wire spec
  // itself rejects as oversized (which would poison the client's reader).
  static_assert(24 + uint64_t{serve::kMaxResultsPerResponse} * 8 <=
                    serve::kMaxPayloadBytes,
                "response at the clamp bound must fit the payload limit");
  MatchingEngine engine = BuildRandomEngine(150, 8);
  serve::ServerOptions opts;
  opts.io_threads = 1;
  serve::ServeServer server(&engine, opts);
  ASSERT_TRUE(server.Start().ok());
  auto client = serve::ServeClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  serve::QueryResponse resp;
  ASSERT_TRUE(client->Query(3, UINT32_MAX, &resp).ok());
  EXPECT_EQ(resp.status, serve::WireStatus::kOk);
  ExpectBitIdentical(resp.results, engine.Query(3, serve::kMaxResultsPerResponse),
                     "huge-k clamp");
  client->Close();
  server.Shutdown();
}

// --- Overload: bounded queue, typed BUSY, recovery. ---

TEST(ServeServerTest, OverloadRepliesBusyStaysUpAndRecovers) {
  obs::EnableMetrics(true);
  MatchingEngine engine = BuildRandomEngine(200, 16);
  serve::ServerOptions opts;
  opts.io_threads = 1;
  opts.batch.max_batch = 64;
  opts.batch.max_wait_us = 150000;  // hold the first batch open 150ms
  opts.batch.queue_capacity = 8;
  serve::ServeServer server(&engine, opts);
  ASSERT_TRUE(server.Start().ok());

  const auto before = obs::MetricsRegistry::Global().Snapshot();
  auto client = serve::ServeClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  // 2x-and-then-some the queue capacity, pipelined: admission control must
  // cap the queue and answer the overflow with typed BUSY immediately.
  constexpr uint32_t kBurst = 20;
  for (uint64_t id = 1; id <= kBurst; ++id) {
    ASSERT_TRUE(
        client->SendQuery(id, static_cast<uint32_t>(id % 200), 10).ok());
  }
  EXPECT_LE(server.batcher()->queue_depth(), 8u);  // bounded under overload

  uint32_t ok = 0, busy = 0, other = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (uint32_t i = 0; i < kBurst; ++i) {
    serve::QueryResponse resp;
    ASSERT_TRUE(client->ReadResponse(&resp).ok()) << "reply " << i;
    if (resp.status == serve::WireStatus::kOk) {
      ++ok;
      EXPECT_FALSE(resp.results.empty());
    } else if (resp.status == serve::WireStatus::kBusy) {
      ++busy;
      EXPECT_TRUE(resp.results.empty());
    } else {
      ++other;
    }
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  // Every request got a typed reply — no silent drops — and the accepted
  // ones completed within a sane budget (one batch window plus the scan).
  EXPECT_EQ(ok + busy + other, kBurst);
  EXPECT_EQ(other, 0u);
  EXPECT_GE(ok, 8u);
  EXPECT_GE(busy, 1u);
  EXPECT_LT(elapsed_s, 5.0);

  const auto mid = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(CounterVal(mid, "serve.dropped") -
                CounterVal(before, "serve.dropped"),
            busy);

  // Recovery: the connection and server are still healthy after overload.
  ASSERT_TRUE(client->Ping().ok());
  serve::QueryResponse resp;
  ASSERT_TRUE(client->Query(3, 5, &resp).ok());
  EXPECT_EQ(resp.status, serve::WireStatus::kOk);

  client->Close();
  server.Shutdown();
  const auto after = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(GaugeVal(after, "serve.queue_depth"), 0.0);  // cleared by drain
}

// --- Graceful drain: accepted requests are answered, then EOF. ---

TEST(ServeServerTest, ShutdownDrainsQueuedRequestsBeforeClosing) {
  MatchingEngine engine = BuildRandomEngine(100, 8);
  serve::ServerOptions opts;
  opts.io_threads = 1;
  opts.batch.max_batch = 64;
  opts.batch.max_wait_us = 500000;  // queued work sits until the drain
  serve::ServeServer server(&engine, opts);
  ASSERT_TRUE(server.Start().ok());

  auto client = serve::ServeClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  for (uint64_t id = 1; id <= 5; ++id) {
    ASSERT_TRUE(
        client->SendQuery(id, static_cast<uint32_t>(id * 3), 4).ok());
  }
  // Wait until all five are admitted, so the drain (not the flush timer)
  // is what answers them.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (server.batcher()->queue_depth() < 5 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(server.batcher()->queue_depth(), 5u);

  server.Shutdown();

  for (uint64_t id = 1; id <= 5; ++id) {
    serve::QueryResponse resp;
    ASSERT_TRUE(client->ReadResponse(&resp).ok()) << "id " << id;
    EXPECT_EQ(resp.request_id, id);
    EXPECT_EQ(resp.status, serve::WireStatus::kOk);
    ExpectBitIdentical(resp.results,
                       engine.Query(static_cast<uint32_t>(id * 3), 4),
                       "drained id " + std::to_string(id));
  }
  serve::QueryResponse resp;
  EXPECT_FALSE(client->ReadResponse(&resp).ok());  // clean EOF after drain
}

// --- Metrics export: .prom dispatch and the signal-flush path. ---

TEST(MetricsExportTest, WriteMetricsFileDispatchesOnExtension) {
  obs::EnableMetrics(true);
  obs::MetricsRegistry::Global().counter("serve.test_counter")->Increment();
  const auto snap = obs::MetricsRegistry::Global().Snapshot();

  const std::string jpath = ::testing::TempDir() + "metrics_disp.json";
  ASSERT_TRUE(obs::WriteMetricsFile(snap, jpath).ok());
  const std::string ppath = ::testing::TempDir() + "metrics_disp.prom";
  ASSERT_TRUE(obs::WriteMetricsFile(snap, ppath).ok());

  auto slurp = [](const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    std::string out;
    char buf[4096];
    size_t n;
    while (f && (n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
    if (f) std::fclose(f);
    return out;
  };
  EXPECT_NE(slurp(jpath).find("\"counters\""), std::string::npos);
  EXPECT_NE(slurp(ppath).find("# TYPE sisg_serve_test_counter counter"),
            std::string::npos);
  std::remove(jpath.c_str());
  std::remove(ppath.c_str());
}

TEST(MetricsExportTest, SignalFlushWritesTheArtifact) {
  obs::EnableMetrics(true);
  obs::MetricsRegistry::Global().counter("serve.sigflush_probe")->Increment();
  const std::string path = ::testing::TempDir() + "sigflush.json";
  obs::FlushMetricsOnSignal(path);
  // Exercise the watcher's flush body directly — same code the real signal
  // triggers, minus killing the test process.
  ASSERT_TRUE(obs::internal::SignalFlushNowForTest().ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  EXPECT_NE(out.find("serve.sigflush_probe"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sisg
