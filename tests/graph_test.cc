#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "datagen/dataset.h"
#include "graph/category_graph.h"
#include "graph/graph_stats.h"
#include "graph/item_graph.h"
#include "graph/partitioner.h"
#include "graph/random_walker.h"

namespace sisg {
namespace {

class GraphFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    DatasetSpec spec;
    spec.catalog.num_items = 800;
    spec.catalog.num_leaf_categories = 16;
    spec.catalog.num_shops = 60;
    spec.catalog.num_brands = 50;
    spec.users.num_user_types = 80;
    spec.num_train_sessions = 2500;
    spec.num_test_sessions = 100;
    auto ds = SyntheticDataset::Generate(spec);
    ASSERT_TRUE(ds.ok());
    dataset_ = std::make_unique<SyntheticDataset>(std::move(ds).value());
    ASSERT_TRUE(graph_
                    .Build(dataset_->train_sessions(),
                           dataset_->catalog().num_items())
                    .ok());
    category_graph_ = CategoryGraph::FromItemGraph(graph_, dataset_->catalog());
  }

  std::unique_ptr<SyntheticDataset> dataset_;
  ItemGraph graph_;
  CategoryGraph category_graph_;
};

// --------------------------- item graph ---------------------------

TEST_F(GraphFixture, NodeFrequenciesMatchSessions) {
  std::vector<uint64_t> freq(dataset_->catalog().num_items(), 0);
  for (const Session& s : dataset_->train_sessions()) {
    for (uint32_t it : s.items) ++freq[it];
  }
  for (uint32_t i = 0; i < freq.size(); ++i) {
    EXPECT_EQ(graph_.NodeFrequency(i), freq[i]);
  }
}

TEST_F(GraphFixture, EdgeWeightsMatchTransitionCounts) {
  std::unordered_map<uint64_t, double> expected;
  for (const Session& s : dataset_->train_sessions()) {
    for (size_t i = 0; i + 1 < s.items.size(); ++i) {
      if (s.items[i] != s.items[i + 1]) {
        expected[(static_cast<uint64_t>(s.items[i]) << 32) | s.items[i + 1]] += 1;
      }
    }
  }
  double total = 0.0;
  for (const auto& [k, w] : expected) total += w;
  EXPECT_DOUBLE_EQ(graph_.total_weight(), total);
  // Spot-check lookups both ways.
  int checked = 0;
  for (const auto& [k, w] : expected) {
    const uint32_t a = static_cast<uint32_t>(k >> 32);
    const uint32_t b = static_cast<uint32_t>(k & 0xffffffffu);
    ASSERT_DOUBLE_EQ(graph_.EdgeWeight(a, b), w);
    if (++checked > 200) break;
  }
  EXPECT_DOUBLE_EQ(graph_.EdgeWeight(0, 0), 0.0);
}

TEST_F(GraphFixture, CsrAdjacencyConsistent) {
  uint64_t edges = 0;
  for (uint32_t n = 0; n < graph_.num_nodes(); ++n) {
    const auto nbrs = graph_.OutNeighbors(n);
    const auto ws = graph_.OutWeights(n);
    ASSERT_EQ(nbrs.size(), ws.size());
    edges += nbrs.size();
    for (size_t i = 1; i < nbrs.size(); ++i) {
      EXPECT_LT(nbrs[i - 1], nbrs[i]);  // sorted, no duplicates
    }
    for (double w : ws) EXPECT_GT(w, 0.0);
  }
  EXPECT_EQ(edges, graph_.num_edges());
}

TEST(ItemGraphTest, RejectsBadInput) {
  ItemGraph g;
  EXPECT_FALSE(g.Build({}, 0).ok());
  Session s;
  s.items = {5};
  EXPECT_EQ(g.Build({s}, 3).code(), StatusCode::kOutOfRange);
}

// --------------------------- category graph ---------------------------

TEST_F(GraphFixture, CategoryReductionConservesFrequency) {
  uint64_t total = 0;
  for (uint32_t c = 0; c < category_graph_.num_categories(); ++c) {
    total += category_graph_.CategoryFrequency(c);
  }
  EXPECT_EQ(total, category_graph_.total_frequency());
  uint64_t item_total = 0;
  for (uint32_t i = 0; i < graph_.num_nodes(); ++i) {
    item_total += graph_.NodeFrequency(i);
  }
  EXPECT_EQ(total, item_total);
}

TEST_F(GraphFixture, CategoryEdgesExcludeIntraCategory) {
  const ItemCatalog& catalog = dataset_->catalog();
  for (const WeightedEdge& e : category_graph_.edges()) {
    EXPECT_NE(e.src, e.dst);
    EXPECT_GT(e.weight, 0.0);
  }
  // Aggregate check: total category edge weight equals total cross-leaf item
  // transition weight.
  double cross = 0.0;
  for (uint32_t item = 0; item < graph_.num_nodes(); ++item) {
    const auto nbrs = graph_.OutNeighbors(item);
    const auto ws = graph_.OutWeights(item);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (catalog.meta(item).leaf_category != catalog.meta(nbrs[i]).leaf_category) {
        cross += ws[i];
      }
    }
  }
  double cat_total = 0.0;
  for (const WeightedEdge& e : category_graph_.edges()) cat_total += e.weight;
  EXPECT_NEAR(cat_total, cross, 1e-6);
  // Bidirectional weight symmetric accessor.
  if (!category_graph_.edges().empty()) {
    const auto& e = category_graph_.edges()[0];
    EXPECT_DOUBLE_EQ(category_graph_.BidirectionalWeight(e.src, e.dst),
                     category_graph_.BidirectionalWeight(e.dst, e.src));
  }
}

// --------------------------- partitioners ---------------------------

struct PartitionCase {
  const char* which;
  uint32_t workers;
};

class PartitionerProperty
    : public ::testing::TestWithParam<std::tuple<const char*, uint32_t>> {};

std::unique_ptr<Partitioner> MakePartitioner(const std::string& which) {
  if (which == "hash") return std::make_unique<HashPartitioner>();
  if (which == "random") return std::make_unique<RandomPartitioner>();
  if (which == "greedy") return std::make_unique<GreedyFrequencyPartitioner>();
  return std::make_unique<HbgpPartitioner>();
}

TEST_P(PartitionerProperty, ValidAssignment) {
  const auto& [which, workers] = GetParam();

  DatasetSpec spec;
  spec.catalog.num_items = 800;
  spec.catalog.num_leaf_categories = 16;
  spec.users.num_user_types = 80;
  spec.num_train_sessions = 2000;
  spec.num_test_sessions = 50;
  auto ds = SyntheticDataset::Generate(spec);
  ASSERT_TRUE(ds.ok());
  ItemGraph graph;
  ASSERT_TRUE(graph.Build(ds->train_sessions(), ds->catalog().num_items()).ok());
  const CategoryGraph cg = CategoryGraph::FromItemGraph(graph, ds->catalog());

  auto partitioner = MakePartitioner(which);
  auto assignment = partitioner->PartitionCategories(cg, workers);
  ASSERT_TRUE(assignment.ok()) << assignment.status().ToString();
  ASSERT_EQ(assignment->size(), cg.num_categories());
  std::set<uint32_t> used;
  for (uint32_t w : *assignment) {
    ASSERT_LT(w, workers);
    used.insert(w);
  }
  // HBGP and greedy must produce exactly `workers` non-empty partitions.
  if (std::string(which) == "hbgp" || std::string(which) == "greedy") {
    EXPECT_EQ(used.size(), workers);
  }
  const PartitionQuality q = EvaluatePartition(cg, *assignment, workers);
  EXPECT_GE(q.imbalance, 1.0 - 1e-9);
  EXPECT_GE(q.cross_rate, 0.0);
  EXPECT_LE(q.cross_rate, 1.0);
  uint64_t load_total = std::accumulate(q.loads.begin(), q.loads.end(), 0ull);
  EXPECT_EQ(load_total, cg.total_frequency());

  const auto items = ItemAssignmentFromCategories(*assignment, ds->catalog());
  ASSERT_EQ(items.size(), ds->catalog().num_items());
  for (uint32_t item = 0; item < items.size(); ++item) {
    EXPECT_EQ(items[item],
              (*assignment)[ds->catalog().meta(item).leaf_category]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    All, PartitionerProperty,
    ::testing::Combine(::testing::Values("hash", "random", "greedy", "hbgp"),
                       ::testing::Values(2u, 4u, 8u)));

TEST_F(GraphFixture, HbgpBeatsRandomOnCrossRateAndGreedyOnNothingWorse) {
  const uint32_t w = 4;
  HbgpPartitioner hbgp;
  RandomPartitioner random;
  auto a_hbgp = hbgp.PartitionCategories(category_graph_, w);
  auto a_rand = random.PartitionCategories(category_graph_, w);
  ASSERT_TRUE(a_hbgp.ok());
  ASSERT_TRUE(a_rand.ok());
  const auto q_hbgp = EvaluatePartition(category_graph_, *a_hbgp, w);
  const auto q_rand = EvaluatePartition(category_graph_, *a_rand, w);
  // HBGP minimizes cross-partition transitions (the whole point, III-B).
  EXPECT_LT(q_hbgp.cross_rate, q_rand.cross_rate);
  // And keeps load within the beta bound (relaxations allowed, so be loose).
  EXPECT_LT(q_hbgp.imbalance, 2.0);
}

TEST_F(GraphFixture, HbgpRespectsBetaWhenFeasible) {
  for (uint32_t w : {2u, 4u}) {
    HbgpPartitioner hbgp(1.2);
    auto assignment = hbgp.PartitionCategories(category_graph_, w);
    ASSERT_TRUE(assignment.ok());
    const auto q = EvaluatePartition(category_graph_, *assignment, w);
    // beta = 1.2 with relaxation fallback: stays near the bound.
    EXPECT_LE(q.imbalance, 1.5) << "w=" << w;
  }
}

TEST_F(GraphFixture, PartitionerRejectsBadArgs) {
  HbgpPartitioner hbgp;
  EXPECT_FALSE(hbgp.PartitionCategories(category_graph_, 0).ok());
  EXPECT_FALSE(
      hbgp.PartitionCategories(category_graph_,
                               category_graph_.num_categories() + 1)
          .ok());
  HbgpPartitioner bad_beta(0.5);
  EXPECT_FALSE(bad_beta.PartitionCategories(category_graph_, 2).ok());
}

TEST_F(GraphFixture, HbgpHandlesWorkersEqualCategories) {
  HbgpPartitioner hbgp;
  auto assignment =
      hbgp.PartitionCategories(category_graph_, category_graph_.num_categories());
  ASSERT_TRUE(assignment.ok());
  std::set<uint32_t> used(assignment->begin(), assignment->end());
  EXPECT_EQ(used.size(), category_graph_.num_categories());
}

// --------------------------- graph stats ---------------------------

TEST_F(GraphFixture, GraphStatsConsistent) {
  const GraphStats s = ComputeGraphStats(graph_);
  EXPECT_EQ(s.num_nodes, graph_.num_nodes());
  EXPECT_EQ(s.num_edges, graph_.num_edges());
  EXPECT_GE(s.mean_out_degree, 1.0);
  EXPECT_GE(s.max_out_degree, static_cast<uint32_t>(s.mean_out_degree));
  EXPECT_GE(s.reciprocity, 0.0);
  EXPECT_LE(s.reciprocity, 1.0);
  // Directed co-click world: most transitions are one-way.
  EXPECT_LT(s.reciprocity, 0.6);
  EXPECT_GE(s.num_weak_components, 1u);
  EXPECT_LE(s.largest_component, s.num_nodes - s.num_isolated);
}

TEST_F(GraphFixture, WeakComponentsRespectEdges) {
  const auto comp = WeakComponents(graph_);
  ASSERT_EQ(comp.size(), graph_.num_nodes());
  for (uint32_t u = 0; u < graph_.num_nodes(); ++u) {
    for (uint32_t v : graph_.OutNeighbors(u)) {
      EXPECT_EQ(comp[u], comp[v]) << u << "->" << v;
    }
  }
}

TEST(GraphStatsTest, HandCraftedGraph) {
  // Sessions: 0->1->2 and 3->4; item 5 isolated.
  Session a, b;
  a.items = {0, 1, 2};
  b.items = {3, 4};
  ItemGraph g;
  ASSERT_TRUE(g.Build({a, b}, 6).ok());
  const GraphStats s = ComputeGraphStats(g);
  EXPECT_EQ(s.num_nodes, 6u);
  EXPECT_EQ(s.num_edges, 3u);
  EXPECT_EQ(s.num_isolated, 1u);  // item 5
  EXPECT_EQ(s.num_weak_components, 2u);
  EXPECT_EQ(s.largest_component, 3u);
  EXPECT_DOUBLE_EQ(s.reciprocity, 0.0);

  // With a reverse edge, reciprocity rises.
  Session c;
  c.items = {1, 0};
  ItemGraph g2;
  ASSERT_TRUE(g2.Build({a, b, c}, 6).ok());
  EXPECT_GT(ComputeGraphStats(g2).reciprocity, 0.4);
}

TEST(GraphStatsTest, DegreeHistogram) {
  Session a;
  a.items = {0, 1, 0, 2, 0, 3};  // node 0 has out-degree 3
  ItemGraph g;
  ASSERT_TRUE(g.Build({a}, 4).ok());
  const auto hist = OutDegreeHistogram(g, 8);
  ASSERT_EQ(hist.size(), 9u);
  EXPECT_EQ(hist[3], 1u);  // node 0
  uint64_t total = 0;
  for (uint64_t h : hist) total += h;
  EXPECT_EQ(total, 4u);
}

// --------------------------- random walker ---------------------------

TEST_F(GraphFixture, WalksFollowEdges) {
  RandomWalker walker;
  ASSERT_TRUE(walker.Build(&graph_).ok());
  Rng rng(31);
  const auto walk = walker.Walk(0, 12, rng);
  ASSERT_GE(walk.size(), 1u);
  EXPECT_EQ(walk[0], 0u);
  EXPECT_LE(walk.size(), 12u);
  for (size_t i = 0; i + 1 < walk.size(); ++i) {
    EXPECT_GT(graph_.EdgeWeight(walk[i], walk[i + 1]), 0.0)
        << walk[i] << "->" << walk[i + 1];
  }
}

TEST_F(GraphFixture, GenerateWalksCoverage) {
  RandomWalker walker;
  ASSERT_TRUE(walker.Build(&graph_).ok());
  const auto walks = walker.GenerateWalks(2, 8, 7);
  EXPECT_GT(walks.size(), graph_.num_nodes() / 2);
  for (const auto& w : walks) {
    EXPECT_GE(w.size(), 2u);
    EXPECT_LE(w.size(), 8u);
  }
  // Deterministic for a fixed seed.
  const auto walks2 = walker.GenerateWalks(2, 8, 7);
  ASSERT_EQ(walks.size(), walks2.size());
  EXPECT_EQ(walks[0], walks2[0]);
}

TEST(RandomWalkerTest, NullGraphRejected) {
  RandomWalker walker;
  EXPECT_FALSE(walker.Build(nullptr).ok());
}

}  // namespace
}  // namespace sisg
