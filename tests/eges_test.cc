#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.h"
#include "core/matching_engine.h"
#include "datagen/dataset.h"
#include "eges/eges.h"
#include "eval/hitrate.h"

namespace sisg {
namespace {

class EgesFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    DatasetSpec spec;
    spec.catalog.num_items = 500;
    spec.catalog.num_leaf_categories = 10;
    spec.catalog.num_shops = 40;
    spec.catalog.num_brands = 30;
    spec.users.num_user_types = 60;
    spec.num_train_sessions = 2500;
    spec.num_test_sessions = 400;
    auto ds = SyntheticDataset::Generate(spec);
    ASSERT_TRUE(ds.ok());
    dataset_ = std::make_unique<SyntheticDataset>(std::move(ds).value());
  }

  std::unique_ptr<SyntheticDataset> dataset_;
};

TEST_F(EgesFixture, ModelInitShapes) {
  EgesModel m;
  ASSERT_TRUE(m.Init(dataset_->catalog(), 16, 1).ok());
  EXPECT_EQ(m.num_items(), 500u);
  EXPECT_EQ(m.dim(), 16u);
  EXPECT_FALSE(m.Init(dataset_->catalog(), 0, 1).ok());
  // Attention warm start: item slot dominates but SI is present.
  const float* a = m.Attention(0);
  EXPECT_GT(a[0], a[1]);
  for (int j = 1; j <= kNumItemFeatures; ++j) EXPECT_FLOAT_EQ(a[j], 0.0f);
}

TEST_F(EgesFixture, AggregatedEmbeddingIsConvexCombination) {
  EgesModel m;
  ASSERT_TRUE(m.Init(dataset_->catalog(), 8, 2).ok());
  const uint32_t item = 42;
  std::vector<float> h(8);
  m.AggregatedEmbedding(item, dataset_->catalog(), h.data());

  // Reconstruct by hand from the softmax weights.
  const ItemMeta& meta = dataset_->catalog().meta(item);
  const float* a = m.Attention(item);
  double wsum = 0.0;
  std::vector<double> w(1 + kNumItemFeatures);
  for (int j = 0; j <= kNumItemFeatures; ++j) {
    w[j] = std::exp(static_cast<double>(a[j]));
    wsum += w[j];
  }
  for (uint32_t d = 0; d < 8; ++d) {
    double expected = w[0] / wsum * m.ItemEmbedding(item)[d];
    for (ItemFeatureKind kind : AllItemFeatureKinds()) {
      const int j = static_cast<int>(kind) + 1;
      expected += w[j] / wsum * m.SiEmbedding(kind, meta.Feature(kind))[d];
    }
    EXPECT_NEAR(h[d], expected, 1e-5);
  }
}

TEST_F(EgesFixture, AllAggregatedEmbeddingsMatchSingle) {
  EgesModel m;
  ASSERT_TRUE(m.Init(dataset_->catalog(), 8, 3).ok());
  const auto all = m.AllAggregatedEmbeddings(dataset_->catalog());
  ASSERT_EQ(all.size(), 500u * 8);
  std::vector<float> h(8);
  for (uint32_t item : {0u, 123u, 499u}) {
    m.AggregatedEmbedding(item, dataset_->catalog(), h.data());
    for (uint32_t d = 0; d < 8; ++d) {
      EXPECT_FLOAT_EQ(all[item * 8 + d], h[d]);
    }
  }
}

TEST_F(EgesFixture, TrainRejectsBadInput) {
  EgesTrainer trainer(EgesOptions{});
  EgesModel m;
  EXPECT_FALSE(trainer.Train({}, dataset_->catalog(), &m).ok());
  EXPECT_FALSE(
      trainer.Train(dataset_->train_sessions(), dataset_->catalog(), nullptr)
          .ok());
}

TEST_F(EgesFixture, TrainingBeatsUntrainedAtRetrieval) {
  EgesOptions opts;
  opts.dim = 32;
  opts.epochs = 4;
  opts.negatives = 5;
  opts.walks_per_node = 4;
  EgesTrainer trainer(opts);
  EgesModel trained, untrained;
  ASSERT_TRUE(
      trainer.Train(dataset_->train_sessions(), dataset_->catalog(), &trained)
          .ok());
  ASSERT_TRUE(untrained.Init(dataset_->catalog(), 32, opts.seed).ok());

  auto hr20 = [&](const EgesModel& m) {
    MatchingEngine engine;
    EXPECT_TRUE(engine
                    .Build(m.AllAggregatedEmbeddings(dataset_->catalog()), {},
                           dataset_->catalog().num_items(), 32,
                           SimilarityMode::kCosineInput)
                    .ok());
    auto res = EvaluateHitRate(
        dataset_->test_sessions(),
        [&](uint32_t item, uint32_t k) { return engine.Query(item, k); }, {20});
    return res.hit_rate[0];
  };
  const double hr_trained = hr20(trained);
  const double hr_untrained = hr20(untrained);
  EXPECT_GT(hr_trained, 0.08);
  EXPECT_GT(hr_trained, 4 * hr_untrained + 0.02);
}

TEST_F(EgesFixture, AttentionAdaptsDuringTraining) {
  EgesOptions opts;
  opts.dim = 16;
  opts.epochs = 2;
  opts.negatives = 5;
  opts.walks_per_node = 2;
  EgesTrainer trainer(opts);
  EgesModel m;
  ASSERT_TRUE(
      trainer.Train(dataset_->train_sessions(), dataset_->catalog(), &m).ok());
  // At least some items' attention logits moved away from the warm start.
  int moved = 0;
  for (uint32_t item = 0; item < m.num_items(); ++item) {
    const float* a = m.Attention(item);
    for (int j = 1; j <= kNumItemFeatures; ++j) {
      if (std::abs(a[j]) > 1e-3) {
        ++moved;
        break;
      }
    }
  }
  EXPECT_GT(moved, static_cast<int>(m.num_items() / 4));
}

}  // namespace
}  // namespace sisg
