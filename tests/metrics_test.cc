// Tests of the observability subsystem: lock-free counters/gauges under
// ThreadPool contention, log-bucket histogram boundaries and percentile
// merge, JSON exporter round-trip through the bundled parser, and the
// core invariant that instrumentation never perturbs training (metrics on
// vs off is bit-identical).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "corpus/corpus.h"
#include "datagen/dataset.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sgns/embedding_model.h"
#include "sgns/trainer.h"

namespace sisg {
namespace {

/// Restores the global metrics switch (and zeroes the registry) around each
/// test so the suite is order-independent.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = obs::MetricsEnabled();
    obs::MetricsRegistry::Global().Reset();
  }
  void TearDown() override {
    obs::EnableMetrics(was_enabled_);
    obs::MetricsRegistry::Global().Reset();
  }
  bool was_enabled_ = false;
};

// --------------------------- counters / gauges ---------------------------

TEST_F(MetricsTest, EnableToggle) {
  obs::EnableMetrics(true);
  EXPECT_TRUE(obs::MetricsEnabled());
  obs::EnableMetrics(false);
  EXPECT_FALSE(obs::MetricsEnabled());
}

TEST_F(MetricsTest, CounterBasics) {
  obs::Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST_F(MetricsTest, GaugeSetAndAccumulate) {
  obs::Gauge g;
  g.Set(2.5);
  EXPECT_EQ(g.Value(), 2.5);
  g.Add(0.5);
  g.Add(-1.0);
  EXPECT_EQ(g.Value(), 2.0);
  g.Reset();
  EXPECT_EQ(g.Value(), 0.0);
}

// The shard merge must be exact under real contention: many pool workers
// hammering the same counter and histogram. Run under TSan this is also the
// data-race check for the whole write path.
TEST_F(MetricsTest, CounterAndHistogramExactUnderThreadPoolContention) {
  obs::Counter counter;
  obs::Histogram hist;
  constexpr int kTasks = 64;
  constexpr int kPerTask = 1000;
  {
    ThreadPool pool(8);
    for (int t = 0; t < kTasks; ++t) {
      pool.Submit([&counter, &hist, t] {
        for (int i = 0; i < kPerTask; ++i) {
          counter.Increment();
          hist.Observe(1e-3 * (1 + ((t + i) % 7)));
        }
      });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.Value(), static_cast<uint64_t>(kTasks) * kPerTask);
  const obs::HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kTasks) * kPerTask);
  uint64_t bucket_total = 0;
  for (uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
}

// --------------------------- histogram buckets ---------------------------

TEST_F(MetricsTest, BucketBoundsContainTheirValues) {
  std::mt19937_64 rng(20260807);
  std::uniform_real_distribution<double> exp_dist(-30.0, 30.0);
  for (int i = 0; i < 20000; ++i) {
    const double v = std::exp2(exp_dist(rng));
    const int idx = obs::Histogram::BucketIndex(v);
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, obs::Histogram::kNumBuckets);
    ASSERT_LE(obs::Histogram::BucketLowerBound(idx), v)
        << "v=" << v << " idx=" << idx;
    ASSERT_LT(v, obs::Histogram::BucketUpperBound(idx))
        << "v=" << v << " idx=" << idx;
  }
}

TEST_F(MetricsTest, BucketEdgesAndSpecialValues) {
  // Zero and subnormal-small values land in the underflow bucket.
  EXPECT_EQ(obs::Histogram::BucketIndex(0.0), 0);
  EXPECT_EQ(obs::Histogram::BucketIndex(1e-12), 0);
  EXPECT_EQ(obs::Histogram::BucketLowerBound(0), 0.0);
  // Huge values and NaN go to the overflow bucket instead of indexing out
  // of range.
  EXPECT_EQ(obs::Histogram::BucketIndex(1e300),
            obs::Histogram::kNumBuckets - 1);
  EXPECT_EQ(obs::Histogram::BucketIndex(std::numeric_limits<double>::quiet_NaN()),
            obs::Histogram::kNumBuckets - 1);
  EXPECT_TRUE(std::isinf(
      obs::Histogram::BucketUpperBound(obs::Histogram::kNumBuckets - 1)));
  // An exact power of two is the inclusive lower edge of its bucket.
  const int idx = obs::Histogram::BucketIndex(1.0);
  EXPECT_EQ(obs::Histogram::BucketLowerBound(idx), 1.0);
  // Buckets tile the range: upper(i) == lower(i+1).
  for (int i = 0; i + 1 < obs::Histogram::kNumBuckets - 1; ++i) {
    ASSERT_EQ(obs::Histogram::BucketUpperBound(i),
              obs::Histogram::BucketLowerBound(i + 1))
        << "gap after bucket " << i;
  }
}

TEST_F(MetricsTest, QuantilesWithinBucketResolution) {
  // 4 sub-buckets per octave bounds the relative quantile error by
  // 2^(1/4)-1 ~ 19%; check against an exactly known uniform stream.
  obs::Histogram h;
  for (int i = 1; i <= 10000; ++i) h.Observe(i * 1e-4);  // 0.1ms .. 1s
  const obs::HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 10000u);
  EXPECT_NEAR(snap.sum, 10000.0 * 10001.0 / 2.0 * 1e-4, 1e-6);
  for (const double q : {0.5, 0.9, 0.95, 0.99}) {
    const double exact = q * 1.0;  // quantile of uniform(0, 1]
    const double est = snap.Quantile(q);
    EXPECT_NEAR(est, exact, exact * 0.20) << "q=" << q;
  }
  // Degenerate quantiles stay inside the observed range.
  EXPECT_GE(snap.Quantile(0.0), 0.0);
  EXPECT_LE(snap.Quantile(1.0), 2.0);
}

TEST_F(MetricsTest, MergeMatchesCombinedStream) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(1e-6, 10.0);
  obs::Histogram a, b, combined;
  for (int i = 0; i < 5000; ++i) {
    const double v = dist(rng);
    (i % 2 == 0 ? a : b).Observe(v);
    combined.Observe(v);
  }
  obs::HistogramSnapshot merged = a.Snapshot();
  merged.MergeFrom(b.Snapshot());
  const obs::HistogramSnapshot want = combined.Snapshot();
  EXPECT_EQ(merged.count, want.count);
  EXPECT_NEAR(merged.sum, want.sum, 1e-9);
  ASSERT_EQ(merged.buckets.size(), want.buckets.size());
  for (size_t i = 0; i < merged.buckets.size(); ++i) {
    ASSERT_EQ(merged.buckets[i], want.buckets[i]) << "bucket " << i;
  }
  for (const double q : {0.25, 0.5, 0.75, 0.99}) {
    EXPECT_EQ(merged.Quantile(q), want.Quantile(q));
  }
}

// --------------------------- registry ---------------------------

TEST_F(MetricsTest, RegistryPointersStableAcrossReset) {
  auto& reg = obs::MetricsRegistry::Global();
  obs::Counter* c = reg.counter("test.reset_counter");
  obs::Gauge* g = reg.gauge("test.reset_gauge");
  obs::Histogram* h = reg.histogram("test.reset_hist");
  c->Add(5);
  g->Set(1.5);
  h->Observe(0.25);
  reg.Reset();
  // Same objects, zeroed values.
  EXPECT_EQ(reg.counter("test.reset_counter"), c);
  EXPECT_EQ(reg.gauge("test.reset_gauge"), g);
  EXPECT_EQ(reg.histogram("test.reset_hist"), h);
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(g->Value(), 0.0);
  EXPECT_EQ(h->Count(), 0u);
}

TEST_F(MetricsTest, TraceSpanRecordsElapsed) {
  obs::EnableMetrics(true);
  obs::Histogram* h = obs::MetricsRegistry::Global().histogram("test.span");
  {
    obs::TraceSpan span(h);
  }
  EXPECT_EQ(h->Count(), 1u);
  EXPECT_GE(h->Snapshot().sum, 0.0);
  // Null histogram and disabled metrics are both no-ops.
  { obs::TraceSpan span(static_cast<obs::Histogram*>(nullptr)); }
  obs::EnableMetrics(false);
  { obs::TraceSpan span(h); }
  EXPECT_EQ(h->Count(), 1u);
}

// --------------------------- exporters ---------------------------

TEST_F(MetricsTest, JsonExportRoundTrips) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.counter("rt.pairs")->Add(12345);
  reg.gauge("rt.lr")->Set(0.024999999999999998);
  obs::Histogram* h = reg.histogram("rt.latency");
  for (int i = 1; i <= 100; ++i) h->Observe(i * 1e-3);

  const obs::MetricsSnapshot snap = reg.Snapshot();
  auto doc = obs::ParseJson(obs::ToJson(snap));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();

  const obs::JsonValue* counters = doc->Find("counters");
  ASSERT_NE(counters, nullptr);
  const obs::JsonValue* pairs = counters->Find("rt.pairs");
  ASSERT_NE(pairs, nullptr);
  EXPECT_EQ(pairs->as_number(), 12345.0);

  const obs::JsonValue* gauges = doc->Find("gauges");
  ASSERT_NE(gauges, nullptr);
  // %.17g printing makes the double survive the round trip exactly.
  EXPECT_EQ(gauges->Find("rt.lr")->as_number(), 0.024999999999999998);

  const obs::JsonValue* hist = doc->Find("histograms")->Find("rt.latency");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->Find("count")->as_number(), 100.0);
  EXPECT_EQ(hist->Find("p50")->as_number(),
            snap.histograms.at("rt.latency").Quantile(0.5));
  EXPECT_EQ(hist->Find("mean")->as_number(),
            snap.histograms.at("rt.latency").Mean());
  EXPECT_NE(hist->Find("p99"), nullptr);
  EXPECT_NE(hist->Find("max"), nullptr);
}

TEST_F(MetricsTest, JsonFileWriteThenParse) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.counter("file.events")->Add(7);
  const std::string path = ::testing::TempDir() + "/metrics_rt.json";
  ASSERT_TRUE(obs::WriteJsonFile(reg.Snapshot(), path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  auto doc = obs::ParseJson(text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("counters")->Find("file.events")->as_number(), 7.0);
  std::remove(path.c_str());
}

TEST_F(MetricsTest, JsonParserHandlesEscapesAndRejectsGarbage) {
  auto ok = obs::ParseJson(
      R"({"s": "a\n\"bé", "arr": [1, -2.5e3, true, null], "o": {}})");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->Find("s")->as_string(), "a\n\"b\xc3\xa9");
  ASSERT_EQ(ok->Find("arr")->as_array().size(), 4u);
  EXPECT_EQ(ok->Find("arr")->as_array()[1].as_number(), -2500.0);
  EXPECT_TRUE(ok->Find("arr")->as_array()[3].is_null());

  EXPECT_FALSE(obs::ParseJson("").ok());
  EXPECT_FALSE(obs::ParseJson("{").ok());
  EXPECT_FALSE(obs::ParseJson("{} trailing").ok());
  EXPECT_FALSE(obs::ParseJson(R"({"a": nul})").ok());
  EXPECT_FALSE(obs::ParseJson(R"({"a": 1-2})").ok());
  EXPECT_FALSE(obs::ParseJson(R"({"a": "unterminated)").ok());
  // Depth bound rejects adversarial nesting instead of overflowing the
  // stack.
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(obs::ParseJson(deep).ok());
}

TEST_F(MetricsTest, PrometheusTextShape) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.counter("prom.requests")->Add(3);
  reg.histogram("prom.latency")->Observe(0.01);
  const std::string text = obs::ToPrometheusText(reg.Snapshot());
  EXPECT_NE(text.find("# TYPE sisg_prom_requests counter"), std::string::npos);
  EXPECT_NE(text.find("sisg_prom_requests 3"), std::string::npos);
  EXPECT_NE(text.find("sisg_prom_latency_count 1"), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
}

// --------------------------- training invariance ---------------------------

// The load-bearing guarantee: flipping metrics on must not change a single
// trained byte. All instrumentation is read-only with respect to model
// state and consumes no RNG. The ctest registration also runs this pinned
// to SISG_SIMD=scalar (metrics_test_scalar) so the comparison is
// dispatch-independent.
TEST_F(MetricsTest, TrainingBitIdenticalWithMetricsOnAndOff) {
  DatasetSpec spec;
  spec.catalog.num_items = 200;
  spec.catalog.num_leaf_categories = 6;
  spec.catalog.num_shops = 20;
  spec.catalog.num_brands = 16;
  spec.users.num_user_types = 30;
  spec.num_train_sessions = 600;
  spec.num_test_sessions = 10;
  auto ds = SyntheticDataset::Generate(spec);
  ASSERT_TRUE(ds.ok());
  const TokenSpace ts = TokenSpace::Create(&ds->catalog(), &ds->users());
  Corpus corpus;
  ASSERT_TRUE(
      corpus.Build(ds->train_sessions(), ts, ds->catalog(), CorpusOptions{})
          .ok());

  // Single-threaded: with >1 worker the HogWild update order is already
  // scheduler-dependent, so run-to-run comparison is only meaningful here.
  SgnsOptions opts;
  opts.dim = 16;
  opts.epochs = 2;
  opts.negatives = 5;
  opts.num_threads = 1;

  obs::EnableMetrics(false);
  EmbeddingModel off;
  ASSERT_TRUE(SgnsTrainer(opts).Train(corpus, &off).ok());

  obs::EnableMetrics(true);
  EmbeddingModel on;
  ASSERT_TRUE(SgnsTrainer(opts).Train(corpus, &on).ok());
  obs::EnableMetrics(false);

  ASSERT_EQ(off.rows(), on.rows());
  ASSERT_EQ(off.dim(), on.dim());
  for (uint32_t r = 0; r < off.rows(); ++r) {
    ASSERT_EQ(std::memcmp(off.Input(r), on.Input(r),
                          off.dim() * sizeof(float)),
              0)
        << "input row " << r << " diverged with metrics enabled";
    ASSERT_EQ(std::memcmp(off.Output(r), on.Output(r),
                          off.dim() * sizeof(float)),
              0)
        << "output row " << r << " diverged with metrics enabled";
  }
  // And the metrics actually recorded the run.
  EXPECT_GE(obs::MetricsRegistry::Global().counter("train.pairs")->Value(),
            1u);
}

}  // namespace
}  // namespace sisg
