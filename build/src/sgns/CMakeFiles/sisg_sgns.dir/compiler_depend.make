# Empty compiler generated dependencies file for sisg_sgns.
# This may be replaced when dependencies are built.
