file(REMOVE_RECURSE
  "libsisg_sgns.a"
)
