
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sgns/embedding_model.cc" "src/sgns/CMakeFiles/sisg_sgns.dir/embedding_model.cc.o" "gcc" "src/sgns/CMakeFiles/sisg_sgns.dir/embedding_model.cc.o.d"
  "/root/repo/src/sgns/trainer.cc" "src/sgns/CMakeFiles/sisg_sgns.dir/trainer.cc.o" "gcc" "src/sgns/CMakeFiles/sisg_sgns.dir/trainer.cc.o.d"
  "/root/repo/src/sgns/warm_start.cc" "src/sgns/CMakeFiles/sisg_sgns.dir/warm_start.cc.o" "gcc" "src/sgns/CMakeFiles/sisg_sgns.dir/warm_start.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sisg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/sisg_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/sisg_datagen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
