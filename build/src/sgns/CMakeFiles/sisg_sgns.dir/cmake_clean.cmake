file(REMOVE_RECURSE
  "CMakeFiles/sisg_sgns.dir/embedding_model.cc.o"
  "CMakeFiles/sisg_sgns.dir/embedding_model.cc.o.d"
  "CMakeFiles/sisg_sgns.dir/trainer.cc.o"
  "CMakeFiles/sisg_sgns.dir/trainer.cc.o.d"
  "CMakeFiles/sisg_sgns.dir/warm_start.cc.o"
  "CMakeFiles/sisg_sgns.dir/warm_start.cc.o.d"
  "libsisg_sgns.a"
  "libsisg_sgns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sisg_sgns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
