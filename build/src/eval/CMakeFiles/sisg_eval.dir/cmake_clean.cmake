file(REMOVE_RECURSE
  "CMakeFiles/sisg_eval.dir/ctr_simulator.cc.o"
  "CMakeFiles/sisg_eval.dir/ctr_simulator.cc.o.d"
  "CMakeFiles/sisg_eval.dir/hitrate.cc.o"
  "CMakeFiles/sisg_eval.dir/hitrate.cc.o.d"
  "CMakeFiles/sisg_eval.dir/pca.cc.o"
  "CMakeFiles/sisg_eval.dir/pca.cc.o.d"
  "CMakeFiles/sisg_eval.dir/table_printer.cc.o"
  "CMakeFiles/sisg_eval.dir/table_printer.cc.o.d"
  "CMakeFiles/sisg_eval.dir/tsne.cc.o"
  "CMakeFiles/sisg_eval.dir/tsne.cc.o.d"
  "libsisg_eval.a"
  "libsisg_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sisg_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
