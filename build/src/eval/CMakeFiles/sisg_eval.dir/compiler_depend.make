# Empty compiler generated dependencies file for sisg_eval.
# This may be replaced when dependencies are built.
