file(REMOVE_RECURSE
  "libsisg_eval.a"
)
