
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/ctr_simulator.cc" "src/eval/CMakeFiles/sisg_eval.dir/ctr_simulator.cc.o" "gcc" "src/eval/CMakeFiles/sisg_eval.dir/ctr_simulator.cc.o.d"
  "/root/repo/src/eval/hitrate.cc" "src/eval/CMakeFiles/sisg_eval.dir/hitrate.cc.o" "gcc" "src/eval/CMakeFiles/sisg_eval.dir/hitrate.cc.o.d"
  "/root/repo/src/eval/pca.cc" "src/eval/CMakeFiles/sisg_eval.dir/pca.cc.o" "gcc" "src/eval/CMakeFiles/sisg_eval.dir/pca.cc.o.d"
  "/root/repo/src/eval/table_printer.cc" "src/eval/CMakeFiles/sisg_eval.dir/table_printer.cc.o" "gcc" "src/eval/CMakeFiles/sisg_eval.dir/table_printer.cc.o.d"
  "/root/repo/src/eval/tsne.cc" "src/eval/CMakeFiles/sisg_eval.dir/tsne.cc.o" "gcc" "src/eval/CMakeFiles/sisg_eval.dir/tsne.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sisg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/sisg_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sisg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/sisg_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/sgns/CMakeFiles/sisg_sgns.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/sisg_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sisg_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
