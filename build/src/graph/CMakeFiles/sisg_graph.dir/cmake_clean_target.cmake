file(REMOVE_RECURSE
  "libsisg_graph.a"
)
