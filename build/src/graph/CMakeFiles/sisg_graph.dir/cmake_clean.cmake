file(REMOVE_RECURSE
  "CMakeFiles/sisg_graph.dir/category_graph.cc.o"
  "CMakeFiles/sisg_graph.dir/category_graph.cc.o.d"
  "CMakeFiles/sisg_graph.dir/graph_stats.cc.o"
  "CMakeFiles/sisg_graph.dir/graph_stats.cc.o.d"
  "CMakeFiles/sisg_graph.dir/item_graph.cc.o"
  "CMakeFiles/sisg_graph.dir/item_graph.cc.o.d"
  "CMakeFiles/sisg_graph.dir/partitioner.cc.o"
  "CMakeFiles/sisg_graph.dir/partitioner.cc.o.d"
  "CMakeFiles/sisg_graph.dir/random_walker.cc.o"
  "CMakeFiles/sisg_graph.dir/random_walker.cc.o.d"
  "libsisg_graph.a"
  "libsisg_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sisg_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
