
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/category_graph.cc" "src/graph/CMakeFiles/sisg_graph.dir/category_graph.cc.o" "gcc" "src/graph/CMakeFiles/sisg_graph.dir/category_graph.cc.o.d"
  "/root/repo/src/graph/graph_stats.cc" "src/graph/CMakeFiles/sisg_graph.dir/graph_stats.cc.o" "gcc" "src/graph/CMakeFiles/sisg_graph.dir/graph_stats.cc.o.d"
  "/root/repo/src/graph/item_graph.cc" "src/graph/CMakeFiles/sisg_graph.dir/item_graph.cc.o" "gcc" "src/graph/CMakeFiles/sisg_graph.dir/item_graph.cc.o.d"
  "/root/repo/src/graph/partitioner.cc" "src/graph/CMakeFiles/sisg_graph.dir/partitioner.cc.o" "gcc" "src/graph/CMakeFiles/sisg_graph.dir/partitioner.cc.o.d"
  "/root/repo/src/graph/random_walker.cc" "src/graph/CMakeFiles/sisg_graph.dir/random_walker.cc.o" "gcc" "src/graph/CMakeFiles/sisg_graph.dir/random_walker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sisg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/sisg_datagen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
