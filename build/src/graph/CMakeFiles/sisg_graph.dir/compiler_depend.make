# Empty compiler generated dependencies file for sisg_graph.
# This may be replaced when dependencies are built.
