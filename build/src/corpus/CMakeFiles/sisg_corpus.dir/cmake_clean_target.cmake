file(REMOVE_RECURSE
  "libsisg_corpus.a"
)
