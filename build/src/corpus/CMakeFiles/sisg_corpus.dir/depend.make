# Empty dependencies file for sisg_corpus.
# This may be replaced when dependencies are built.
