
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/corpus.cc" "src/corpus/CMakeFiles/sisg_corpus.dir/corpus.cc.o" "gcc" "src/corpus/CMakeFiles/sisg_corpus.dir/corpus.cc.o.d"
  "/root/repo/src/corpus/enricher.cc" "src/corpus/CMakeFiles/sisg_corpus.dir/enricher.cc.o" "gcc" "src/corpus/CMakeFiles/sisg_corpus.dir/enricher.cc.o.d"
  "/root/repo/src/corpus/token_space.cc" "src/corpus/CMakeFiles/sisg_corpus.dir/token_space.cc.o" "gcc" "src/corpus/CMakeFiles/sisg_corpus.dir/token_space.cc.o.d"
  "/root/repo/src/corpus/vocabulary.cc" "src/corpus/CMakeFiles/sisg_corpus.dir/vocabulary.cc.o" "gcc" "src/corpus/CMakeFiles/sisg_corpus.dir/vocabulary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sisg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/sisg_datagen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
