file(REMOVE_RECURSE
  "CMakeFiles/sisg_corpus.dir/corpus.cc.o"
  "CMakeFiles/sisg_corpus.dir/corpus.cc.o.d"
  "CMakeFiles/sisg_corpus.dir/enricher.cc.o"
  "CMakeFiles/sisg_corpus.dir/enricher.cc.o.d"
  "CMakeFiles/sisg_corpus.dir/token_space.cc.o"
  "CMakeFiles/sisg_corpus.dir/token_space.cc.o.d"
  "CMakeFiles/sisg_corpus.dir/vocabulary.cc.o"
  "CMakeFiles/sisg_corpus.dir/vocabulary.cc.o.d"
  "libsisg_corpus.a"
  "libsisg_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sisg_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
