file(REMOVE_RECURSE
  "CMakeFiles/sisg_dist.dir/cost_model.cc.o"
  "CMakeFiles/sisg_dist.dir/cost_model.cc.o.d"
  "CMakeFiles/sisg_dist.dir/distributed_trainer.cc.o"
  "CMakeFiles/sisg_dist.dir/distributed_trainer.cc.o.d"
  "libsisg_dist.a"
  "libsisg_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sisg_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
