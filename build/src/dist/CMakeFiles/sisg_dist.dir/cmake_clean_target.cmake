file(REMOVE_RECURSE
  "libsisg_dist.a"
)
