# Empty compiler generated dependencies file for sisg_dist.
# This may be replaced when dependencies are built.
