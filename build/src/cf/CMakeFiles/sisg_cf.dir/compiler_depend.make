# Empty compiler generated dependencies file for sisg_cf.
# This may be replaced when dependencies are built.
