file(REMOVE_RECURSE
  "CMakeFiles/sisg_cf.dir/item_cf.cc.o"
  "CMakeFiles/sisg_cf.dir/item_cf.cc.o.d"
  "libsisg_cf.a"
  "libsisg_cf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sisg_cf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
