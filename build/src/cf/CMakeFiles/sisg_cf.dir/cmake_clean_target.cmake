file(REMOVE_RECURSE
  "libsisg_cf.a"
)
