file(REMOVE_RECURSE
  "libsisg_eges.a"
)
