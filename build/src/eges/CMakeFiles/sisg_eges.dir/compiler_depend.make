# Empty compiler generated dependencies file for sisg_eges.
# This may be replaced when dependencies are built.
