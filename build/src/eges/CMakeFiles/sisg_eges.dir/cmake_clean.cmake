file(REMOVE_RECURSE
  "CMakeFiles/sisg_eges.dir/eges.cc.o"
  "CMakeFiles/sisg_eges.dir/eges.cc.o.d"
  "libsisg_eges.a"
  "libsisg_eges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sisg_eges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
