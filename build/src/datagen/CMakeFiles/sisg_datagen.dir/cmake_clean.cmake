file(REMOVE_RECURSE
  "CMakeFiles/sisg_datagen.dir/catalog.cc.o"
  "CMakeFiles/sisg_datagen.dir/catalog.cc.o.d"
  "CMakeFiles/sisg_datagen.dir/dataset.cc.o"
  "CMakeFiles/sisg_datagen.dir/dataset.cc.o.d"
  "CMakeFiles/sisg_datagen.dir/feature_schema.cc.o"
  "CMakeFiles/sisg_datagen.dir/feature_schema.cc.o.d"
  "CMakeFiles/sisg_datagen.dir/session_generator.cc.o"
  "CMakeFiles/sisg_datagen.dir/session_generator.cc.o.d"
  "CMakeFiles/sisg_datagen.dir/user_universe.cc.o"
  "CMakeFiles/sisg_datagen.dir/user_universe.cc.o.d"
  "libsisg_datagen.a"
  "libsisg_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sisg_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
