
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/catalog.cc" "src/datagen/CMakeFiles/sisg_datagen.dir/catalog.cc.o" "gcc" "src/datagen/CMakeFiles/sisg_datagen.dir/catalog.cc.o.d"
  "/root/repo/src/datagen/dataset.cc" "src/datagen/CMakeFiles/sisg_datagen.dir/dataset.cc.o" "gcc" "src/datagen/CMakeFiles/sisg_datagen.dir/dataset.cc.o.d"
  "/root/repo/src/datagen/feature_schema.cc" "src/datagen/CMakeFiles/sisg_datagen.dir/feature_schema.cc.o" "gcc" "src/datagen/CMakeFiles/sisg_datagen.dir/feature_schema.cc.o.d"
  "/root/repo/src/datagen/session_generator.cc" "src/datagen/CMakeFiles/sisg_datagen.dir/session_generator.cc.o" "gcc" "src/datagen/CMakeFiles/sisg_datagen.dir/session_generator.cc.o.d"
  "/root/repo/src/datagen/user_universe.cc" "src/datagen/CMakeFiles/sisg_datagen.dir/user_universe.cc.o" "gcc" "src/datagen/CMakeFiles/sisg_datagen.dir/user_universe.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sisg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
