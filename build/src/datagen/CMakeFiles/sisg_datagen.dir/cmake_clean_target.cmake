file(REMOVE_RECURSE
  "libsisg_datagen.a"
)
