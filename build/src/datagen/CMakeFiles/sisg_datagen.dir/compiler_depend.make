# Empty compiler generated dependencies file for sisg_datagen.
# This may be replaced when dependencies are built.
