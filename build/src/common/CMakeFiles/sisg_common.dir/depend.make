# Empty dependencies file for sisg_common.
# This may be replaced when dependencies are built.
