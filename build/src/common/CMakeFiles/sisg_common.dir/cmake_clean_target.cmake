file(REMOVE_RECURSE
  "libsisg_common.a"
)
