file(REMOVE_RECURSE
  "CMakeFiles/sisg_common.dir/alias_table.cc.o"
  "CMakeFiles/sisg_common.dir/alias_table.cc.o.d"
  "CMakeFiles/sisg_common.dir/env_util.cc.o"
  "CMakeFiles/sisg_common.dir/env_util.cc.o.d"
  "CMakeFiles/sisg_common.dir/flags.cc.o"
  "CMakeFiles/sisg_common.dir/flags.cc.o.d"
  "CMakeFiles/sisg_common.dir/logging.cc.o"
  "CMakeFiles/sisg_common.dir/logging.cc.o.d"
  "CMakeFiles/sisg_common.dir/math_util.cc.o"
  "CMakeFiles/sisg_common.dir/math_util.cc.o.d"
  "CMakeFiles/sisg_common.dir/rng.cc.o"
  "CMakeFiles/sisg_common.dir/rng.cc.o.d"
  "CMakeFiles/sisg_common.dir/status.cc.o"
  "CMakeFiles/sisg_common.dir/status.cc.o.d"
  "CMakeFiles/sisg_common.dir/string_util.cc.o"
  "CMakeFiles/sisg_common.dir/string_util.cc.o.d"
  "CMakeFiles/sisg_common.dir/thread_pool.cc.o"
  "CMakeFiles/sisg_common.dir/thread_pool.cc.o.d"
  "libsisg_common.a"
  "libsisg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sisg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
