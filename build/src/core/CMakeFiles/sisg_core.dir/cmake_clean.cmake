file(REMOVE_RECURSE
  "CMakeFiles/sisg_core.dir/candidate_table.cc.o"
  "CMakeFiles/sisg_core.dir/candidate_table.cc.o.d"
  "CMakeFiles/sisg_core.dir/cold_start.cc.o"
  "CMakeFiles/sisg_core.dir/cold_start.cc.o.d"
  "CMakeFiles/sisg_core.dir/hnsw_index.cc.o"
  "CMakeFiles/sisg_core.dir/hnsw_index.cc.o.d"
  "CMakeFiles/sisg_core.dir/ivf_index.cc.o"
  "CMakeFiles/sisg_core.dir/ivf_index.cc.o.d"
  "CMakeFiles/sisg_core.dir/kmeans.cc.o"
  "CMakeFiles/sisg_core.dir/kmeans.cc.o.d"
  "CMakeFiles/sisg_core.dir/matching_engine.cc.o"
  "CMakeFiles/sisg_core.dir/matching_engine.cc.o.d"
  "CMakeFiles/sisg_core.dir/pipeline.cc.o"
  "CMakeFiles/sisg_core.dir/pipeline.cc.o.d"
  "CMakeFiles/sisg_core.dir/sisg_model.cc.o"
  "CMakeFiles/sisg_core.dir/sisg_model.cc.o.d"
  "libsisg_core.a"
  "libsisg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sisg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
