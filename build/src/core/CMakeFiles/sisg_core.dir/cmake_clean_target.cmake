file(REMOVE_RECURSE
  "libsisg_core.a"
)
