# Empty compiler generated dependencies file for sisg_core.
# This may be replaced when dependencies are built.
