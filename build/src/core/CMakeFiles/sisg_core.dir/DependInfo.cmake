
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/candidate_table.cc" "src/core/CMakeFiles/sisg_core.dir/candidate_table.cc.o" "gcc" "src/core/CMakeFiles/sisg_core.dir/candidate_table.cc.o.d"
  "/root/repo/src/core/cold_start.cc" "src/core/CMakeFiles/sisg_core.dir/cold_start.cc.o" "gcc" "src/core/CMakeFiles/sisg_core.dir/cold_start.cc.o.d"
  "/root/repo/src/core/hnsw_index.cc" "src/core/CMakeFiles/sisg_core.dir/hnsw_index.cc.o" "gcc" "src/core/CMakeFiles/sisg_core.dir/hnsw_index.cc.o.d"
  "/root/repo/src/core/ivf_index.cc" "src/core/CMakeFiles/sisg_core.dir/ivf_index.cc.o" "gcc" "src/core/CMakeFiles/sisg_core.dir/ivf_index.cc.o.d"
  "/root/repo/src/core/kmeans.cc" "src/core/CMakeFiles/sisg_core.dir/kmeans.cc.o" "gcc" "src/core/CMakeFiles/sisg_core.dir/kmeans.cc.o.d"
  "/root/repo/src/core/matching_engine.cc" "src/core/CMakeFiles/sisg_core.dir/matching_engine.cc.o" "gcc" "src/core/CMakeFiles/sisg_core.dir/matching_engine.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/core/CMakeFiles/sisg_core.dir/pipeline.cc.o" "gcc" "src/core/CMakeFiles/sisg_core.dir/pipeline.cc.o.d"
  "/root/repo/src/core/sisg_model.cc" "src/core/CMakeFiles/sisg_core.dir/sisg_model.cc.o" "gcc" "src/core/CMakeFiles/sisg_core.dir/sisg_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sisg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/sisg_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/sgns/CMakeFiles/sisg_sgns.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sisg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/sisg_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/sisg_datagen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
