# Empty dependencies file for sgns_test.
# This may be replaced when dependencies are built.
