file(REMOVE_RECURSE
  "CMakeFiles/sgns_test.dir/sgns_test.cc.o"
  "CMakeFiles/sgns_test.dir/sgns_test.cc.o.d"
  "sgns_test"
  "sgns_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgns_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
