# Empty dependencies file for eges_test.
# This may be replaced when dependencies are built.
