file(REMOVE_RECURSE
  "CMakeFiles/eges_test.dir/eges_test.cc.o"
  "CMakeFiles/eges_test.dir/eges_test.cc.o.d"
  "eges_test"
  "eges_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eges_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
