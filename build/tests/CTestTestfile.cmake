# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;11;sisg_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(datagen_test "/root/repo/build/tests/datagen_test")
set_tests_properties(datagen_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;12;sisg_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(corpus_test "/root/repo/build/tests/corpus_test")
set_tests_properties(corpus_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;13;sisg_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sgns_test "/root/repo/build/tests/sgns_test")
set_tests_properties(sgns_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;14;sisg_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(graph_test "/root/repo/build/tests/graph_test")
set_tests_properties(graph_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;15;sisg_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(dist_test "/root/repo/build/tests/dist_test")
set_tests_properties(dist_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;16;sisg_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(eges_test "/root/repo/build/tests/eges_test")
set_tests_properties(eges_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;17;sisg_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cf_test "/root/repo/build/tests/cf_test")
set_tests_properties(cf_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;18;sisg_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;19;sisg_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(eval_test "/root/repo/build/tests/eval_test")
set_tests_properties(eval_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;20;sisg_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;21;sisg_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(serving_test "/root/repo/build/tests/serving_test")
set_tests_properties(serving_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;22;sisg_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ann_test "/root/repo/build/tests/ann_test")
set_tests_properties(ann_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;23;sisg_add_test;/root/repo/tests/CMakeLists.txt;0;")
