file(REMOVE_RECURSE
  "CMakeFiles/matching_pipeline.dir/matching_pipeline.cpp.o"
  "CMakeFiles/matching_pipeline.dir/matching_pipeline.cpp.o.d"
  "matching_pipeline"
  "matching_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matching_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
