# Empty compiler generated dependencies file for matching_pipeline.
# This may be replaced when dependencies are built.
