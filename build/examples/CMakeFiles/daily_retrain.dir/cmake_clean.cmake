file(REMOVE_RECURSE
  "CMakeFiles/daily_retrain.dir/daily_retrain.cpp.o"
  "CMakeFiles/daily_retrain.dir/daily_retrain.cpp.o.d"
  "daily_retrain"
  "daily_retrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daily_retrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
