# Empty compiler generated dependencies file for daily_retrain.
# This may be replaced when dependencies are built.
