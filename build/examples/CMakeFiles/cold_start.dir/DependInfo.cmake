
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/cold_start.cpp" "examples/CMakeFiles/cold_start.dir/cold_start.cpp.o" "gcc" "examples/CMakeFiles/cold_start.dir/cold_start.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sisg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/sisg_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/eges/CMakeFiles/sisg_eges.dir/DependInfo.cmake"
  "/root/repo/build/src/cf/CMakeFiles/sisg_cf.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/sisg_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sisg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sgns/CMakeFiles/sisg_sgns.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/sisg_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/sisg_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sisg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
