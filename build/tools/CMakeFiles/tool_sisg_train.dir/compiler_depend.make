# Empty compiler generated dependencies file for tool_sisg_train.
# This may be replaced when dependencies are built.
