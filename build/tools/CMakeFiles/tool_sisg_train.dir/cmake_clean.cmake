file(REMOVE_RECURSE
  "CMakeFiles/tool_sisg_train.dir/sisg_train.cc.o"
  "CMakeFiles/tool_sisg_train.dir/sisg_train.cc.o.d"
  "sisg_train"
  "sisg_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_sisg_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
