file(REMOVE_RECURSE
  "CMakeFiles/tool_sisg_datagen.dir/sisg_datagen.cc.o"
  "CMakeFiles/tool_sisg_datagen.dir/sisg_datagen.cc.o.d"
  "sisg_datagen"
  "sisg_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_sisg_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
