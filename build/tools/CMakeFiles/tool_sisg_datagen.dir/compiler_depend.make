# Empty compiler generated dependencies file for tool_sisg_datagen.
# This may be replaced when dependencies are built.
