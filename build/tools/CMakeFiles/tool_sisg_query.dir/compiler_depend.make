# Empty compiler generated dependencies file for tool_sisg_query.
# This may be replaced when dependencies are built.
