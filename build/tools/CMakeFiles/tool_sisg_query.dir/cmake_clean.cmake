file(REMOVE_RECURSE
  "CMakeFiles/tool_sisg_query.dir/sisg_query.cc.o"
  "CMakeFiles/tool_sisg_query.dir/sisg_query.cc.o.d"
  "sisg_query"
  "sisg_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_sisg_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
