# Empty dependencies file for bench_fig5_tsne.
# This may be replaced when dependencies are built.
