# Empty compiler generated dependencies file for bench_fig6_cold_items.
# This may be replaced when dependencies are built.
