# Empty dependencies file for bench_fig4_cold_users.
# This may be replaced when dependencies are built.
