file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_cold_users.dir/bench_fig4_cold_users.cc.o"
  "CMakeFiles/bench_fig4_cold_users.dir/bench_fig4_cold_users.cc.o.d"
  "bench_fig4_cold_users"
  "bench_fig4_cold_users.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_cold_users.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
