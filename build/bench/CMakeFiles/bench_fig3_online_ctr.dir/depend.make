# Empty dependencies file for bench_fig3_online_ctr.
# This may be replaced when dependencies are built.
