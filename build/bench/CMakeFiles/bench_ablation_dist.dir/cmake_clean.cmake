file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dist.dir/bench_ablation_dist.cc.o"
  "CMakeFiles/bench_ablation_dist.dir/bench_ablation_dist.cc.o.d"
  "bench_ablation_dist"
  "bench_ablation_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
