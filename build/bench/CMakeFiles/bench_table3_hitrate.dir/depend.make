# Empty dependencies file for bench_table3_hitrate.
# This may be replaced when dependencies are built.
