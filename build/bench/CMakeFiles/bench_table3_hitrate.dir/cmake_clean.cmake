file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_hitrate.dir/bench_table3_hitrate.cc.o"
  "CMakeFiles/bench_table3_hitrate.dir/bench_table3_hitrate.cc.o.d"
  "bench_table3_hitrate"
  "bench_table3_hitrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_hitrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
