// The full matching stage as deployed (Section I): record sessions, train
// SISG daily, build the candidate-generation engine, and serve next-item
// candidates — evaluated against ground truth with HR@K and compared with
// the CF production baseline. Also demonstrates session text I/O (the
// training-data interchange format).

#include <cstdio>
#include <iostream>

#include "cf/item_cf.h"
#include "core/pipeline.h"
#include "datagen/dataset.h"
#include "eval/hitrate.h"
#include "eval/table_printer.h"

using namespace sisg;

int main() {
  // ---- 1. "Log collection": a week of synthetic click sessions ----
  DatasetSpec spec;
  spec.name = "MatchingSyn";
  spec.catalog.num_items = 8000;
  spec.catalog.num_leaf_categories = 32;
  spec.users.num_user_types = 500;
  spec.num_train_sessions = 16000;
  spec.num_test_sessions = 1000;
  auto dataset = SyntheticDataset::Generate(spec);
  if (!dataset.ok()) {
    std::cerr << dataset.status().ToString() << "\n";
    return 1;
  }

  // Sessions round-trip through the text interchange format.
  const std::string log_path = "/tmp/sisg_sessions.txt";
  if (auto st =
          WriteSessionsText(dataset->train_sessions(), dataset->users(), log_path);
      !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  auto sessions = ReadSessionsText(dataset->users(), log_path);
  if (!sessions.ok()) {
    std::cerr << sessions.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Parsed " << sessions->size() << " sessions from " << log_path
            << "\n";
  std::remove(log_path.c_str());

  // ---- 2. Daily training: SISG-F-U-D on the enriched sequences ----
  SisgConfig config;
  config.variant = SisgVariant::kSisgFUD;
  config.sgns.dim = 48;
  config.sgns.epochs = 15;
  config.sgns.negatives = 8;
  SisgPipeline pipeline(config);
  PipelineReport report;
  auto model =
      pipeline.Train(*sessions, dataset->catalog(), dataset->users(), &report);
  if (!model.ok()) {
    std::cerr << model.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Trained " << report.vocab_size << " embeddings in "
            << report.train.seconds << "s\n";

  // ---- 3. Candidate generation + evaluation ----
  auto engine = model->BuildMatchingEngine();
  if (!engine.ok()) {
    std::cerr << engine.status().ToString() << "\n";
    return 1;
  }
  ItemCf cf;
  if (auto st = cf.Build(*sessions, dataset->catalog().num_items(),
                         ItemCfOptions{});
      !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }

  const std::vector<uint32_t> ks = {1, 10, 20, 100};
  const auto sisg_hr = EvaluateHitRate(
      dataset->test_sessions(),
      [&](uint32_t item, uint32_t k) { return engine->Query(item, k); }, ks);
  const auto cf_hr = EvaluateHitRate(
      dataset->test_sessions(),
      [&](uint32_t item, uint32_t k) { return cf.Query(item, k); }, ks);

  TablePrinter t({"method", "HR@1", "HR@10", "HR@20", "HR@100", "MRR"});
  auto add = [&](const char* name, const HitRateResult& r) {
    t.AddRow({name, TablePrinter::Fixed(r.hit_rate[0], 4),
              TablePrinter::Fixed(r.hit_rate[1], 4),
              TablePrinter::Fixed(r.hit_rate[2], 4),
              TablePrinter::Fixed(r.hit_rate[3], 4),
              TablePrinter::Fixed(r.mrr, 4)});
  };
  add("SISG-F-U-D", sisg_hr);
  add("item CF", cf_hr);
  std::cout << "\nNext-item recommendation over "
            << dataset->test_sessions().size() << " held-out sessions:\n";
  t.Print(std::cout);
  std::cout << "(On a small dense corpus CF's bigram memorization is strong; "
               "SISG's edge appears at catalog scale / sparse coverage — see "
               "bench_fig3_online_ctr.)\n";

  // ---- 4. Serve a query ----
  const uint32_t query = dataset->test_sessions()[0].items[0];
  std::cout << "\nCandidates for item_" << query << ":";
  for (const auto& r : engine->Query(query, 5)) {
    std::cout << " item_" << r.id;
  }
  std::cout << "\n";
  return 0;
}
