// Cold-start scenarios from Section IV-C of the paper:
//   1. Cold USERS — no history: average the user-type vectors matching the
//      known demographics and retrieve against the joint space.
//   2. Cold ITEMS — no interactions: infer an embedding from the item's SI
//      vectors via Eq. (6) and retrieve similar items.

#include <iostream>
#include <vector>

#include "core/cold_start.h"
#include "core/pipeline.h"
#include "datagen/dataset.h"

using namespace sisg;

namespace {

void PrintItems(const SyntheticDataset& dataset,
                const std::vector<ScoredId>& items) {
  for (const auto& r : items) {
    const ItemMeta& m = dataset.catalog().meta(r.id);
    int gender, age, purchase;
    ItemCatalog::DecodeAgp(m.age_gender_purchase_level, &gender, &age,
                           &purchase);
    std::cout << "  item_" << r.id << "  leaf=" << m.leaf_category
              << " brand=" << m.brand << " level="
              << dataset.catalog().Level(r.id) << " target="
              << GenderName(gender) << "/" << PurchaseLevelName(purchase)
              << "\n";
  }
}

}  // namespace

int main() {
  DatasetSpec spec;
  spec.name = "ColdStartSyn";
  spec.catalog.num_items = 6000;
  spec.catalog.num_leaf_categories = 24;
  spec.users.num_user_types = 400;
  spec.num_train_sessions = 12000;
  spec.num_test_sessions = 200;
  auto dataset = SyntheticDataset::Generate(spec);
  if (!dataset.ok()) {
    std::cerr << dataset.status().ToString() << "\n";
    return 1;
  }

  // Cold-start needs the joint space, so train with SI and user types;
  // cosine retrieval (SISG-F-U) is the natural mode for inferred vectors.
  SisgConfig config;
  config.variant = SisgVariant::kSisgFU;
  config.sgns.dim = 48;
  config.sgns.epochs = 15;
  config.sgns.negatives = 8;
  SisgPipeline pipeline(config);
  auto model = pipeline.Train(*dataset);
  if (!model.ok()) {
    std::cerr << model.status().ToString() << "\n";
    return 1;
  }
  auto engine = model->BuildMatchingEngine();
  if (!engine.ok()) {
    std::cerr << engine.status().ToString() << "\n";
    return 1;
  }

  // ---- 1. Cold users (Figure 4 style) ----
  struct Group {
    const char* label;
    int gender, age, purchase;
  };
  for (const Group& g : {Group{"female, 26-30, high purchase power", 0, 2, 2},
                         Group{"male, >60, low purchase power", 1, 6, 0}}) {
    std::vector<float> v;
    const Status st =
        InferColdUserVector(*model, dataset->users(), g.gender, g.age,
                            g.purchase, &v);
    if (!st.ok()) {
      std::cerr << "cold user failed: " << st.ToString() << "\n";
      return 1;
    }
    std::cout << "\nCold-user recommendations for " << g.label << ":\n";
    PrintItems(*dataset, engine->QueryVector(v.data(), 5));
  }

  // ---- 2. Cold items (Figure 6 / Eq. 6 style) ----
  // Pretend item 77 is brand new: use only its metadata.
  const uint32_t new_item = 77;
  const ItemMeta& meta = dataset->catalog().meta(new_item);
  std::vector<float> v;
  const Status st = InferColdItemVector(*model, meta, &v);
  if (!st.ok()) {
    std::cerr << "cold item failed: " << st.ToString() << "\n";
    return 1;
  }
  std::cout << "\nCold-item recommendations for a new item with leaf="
            << meta.leaf_category << " brand=" << meta.brand
            << " (Eq. 6, SI vectors only):\n";
  PrintItems(*dataset, engine->QueryVector(v.data(), 5));

  // Compare with what the trained vector would retrieve (the item actually
  // has history in this dataset) — Figure 6's two rows.
  std::cout << "\nSame item, trained-vector recommendations:\n";
  PrintItems(*dataset, engine->Query(new_item, 5));
  return 0;
}
