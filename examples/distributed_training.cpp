// The distributed training engine end to end (Section III): build the item
// graph, partition leaf categories with HBGP, train on the simulated
// cluster with ATNS, and inspect communication statistics and the
// cost-model wall-clock estimate — comparing HBGP against random
// partitioning and ATNS against plain TNS.

#include <iostream>

#include "corpus/corpus.h"
#include "datagen/dataset.h"
#include "dist/cost_model.h"
#include "dist/distributed_trainer.h"
#include "graph/category_graph.h"
#include "graph/item_graph.h"
#include "graph/partitioner.h"

using namespace sisg;

namespace {

void Report(const char* label, const DistTrainResult& r, uint32_t dim,
            uint32_t negatives) {
  const SimulatedTime t = EstimateTime(r.comm, dim, negatives, {});
  std::cout << label << "\n"
            << "  pairs: " << r.train.pairs_trained
            << "  (local " << r.comm.local_pairs << ", remote "
            << r.comm.remote_pairs << ", hot " << r.comm.hot_pairs << ")\n"
            << "  remote fraction: " << 100.0 * r.comm.RemoteFraction()
            << "%  load imbalance: " << r.comm.LoadImbalance() << "\n"
            << "  bytes sent: " << r.comm.bytes_sent / 1e6 << " MB"
            << "  sync rounds: " << r.comm.sync_rounds << " ("
            << r.comm.sync_bytes / 1e6 << " MB)\n"
            << "  simulated cluster time: " << t.makespan_s << "s\n\n";
}

}  // namespace

int main() {
  DatasetSpec spec;
  spec.name = "DistSyn";
  spec.catalog.num_items = 8000;
  spec.catalog.num_leaf_categories = 32;
  spec.users.num_user_types = 400;
  spec.num_train_sessions = 12000;
  spec.num_test_sessions = 100;
  auto dataset = SyntheticDataset::Generate(spec);
  if (!dataset.ok()) {
    std::cerr << dataset.status().ToString() << "\n";
    return 1;
  }

  // Enriched corpus (item SI + user types).
  TokenSpace ts = TokenSpace::Create(&dataset->catalog(), &dataset->users());
  Corpus corpus;
  if (auto st = corpus.Build(dataset->train_sessions(), ts, dataset->catalog(),
                             CorpusOptions{});
      !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  std::cout << "Corpus: " << corpus.num_tokens() << " tokens, vocab "
            << corpus.vocab().size() << "\n\n";

  // HBGP partitioning over the leaf-category graph.
  const uint32_t kWorkers = 8;
  ItemGraph graph;
  if (auto st =
          graph.Build(dataset->train_sessions(), dataset->catalog().num_items());
      !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  const CategoryGraph cg = CategoryGraph::FromItemGraph(graph, dataset->catalog());
  HbgpPartitioner hbgp;
  auto hbgp_assign = hbgp.PartitionCategories(cg, kWorkers);
  if (!hbgp_assign.ok()) {
    std::cerr << hbgp_assign.status().ToString() << "\n";
    return 1;
  }
  const PartitionQuality q = EvaluatePartition(cg, *hbgp_assign, kWorkers);
  std::cout << "HBGP over " << cg.num_categories() << " leaf categories -> "
            << kWorkers << " workers: cross-edge rate "
            << 100.0 * q.cross_rate << "%, imbalance " << q.imbalance << "\n\n";

  DistOptions opts;
  opts.num_workers = kWorkers;
  opts.sgns.dim = 48;
  opts.sgns.epochs = 2;
  opts.sgns.negatives = 10;

  // 1. Full run (real parameter updates) with HBGP + ATNS.
  {
    EmbeddingModel model;
    DistTrainResult result;
    const auto item_worker =
        ItemAssignmentFromCategories(*hbgp_assign, dataset->catalog());
    if (auto st = DistributedTrainer(opts).Train(corpus, ts, item_worker,
                                                 &model, &result);
        !st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
    Report("HBGP + ATNS (real training)", result, opts.sgns.dim,
           opts.sgns.negatives);
  }

  // 2. Routing-only comparisons (dry runs).
  opts.dry_run = true;
  {
    RandomPartitioner random;
    auto rand_assign = random.PartitionCategories(cg, kWorkers);
    DistTrainResult result;
    (void)DistributedTrainer(opts).Train(
        corpus, ts, ItemAssignmentFromCategories(*rand_assign, dataset->catalog()),
        nullptr, &result);
    Report("random partitioning + ATNS (dry run)", result, opts.sgns.dim,
           opts.sgns.negatives);
  }
  {
    DistOptions tns = opts;
    tns.use_atns = false;
    DistTrainResult result;
    (void)DistributedTrainer(tns).Train(
        corpus, ts, ItemAssignmentFromCategories(*hbgp_assign, dataset->catalog()),
        nullptr, &result);
    Report("HBGP + plain TNS, no hot set (dry run)", result, opts.sgns.dim,
           opts.sgns.negatives);
  }
  return 0;
}
