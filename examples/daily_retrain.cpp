// The production cadence (Section I: "all embeddings computed on a daily
// basis"): each day brings new sessions; the model is retrained with a warm
// start from yesterday's vectors so a short daily run suffices. Compares
// warm-started daily runs against cold restarts on HR@20 and training time.

#include <iostream>

#include "core/pipeline.h"
#include "core/sisg_model.h"
#include "corpus/corpus.h"
#include "datagen/dataset.h"
#include "eval/hitrate.h"
#include "eval/table_printer.h"
#include "sgns/trainer.h"
#include "sgns/warm_start.h"

using namespace sisg;

namespace {

double Hr20(const SisgModel& model, const std::vector<Session>& test) {
  auto engine = model.BuildMatchingEngine();
  if (!engine.ok()) return 0.0;
  return EvaluateHitRate(
             test,
             [&](uint32_t item, uint32_t k) { return engine->Query(item, k); },
             {20})
      .hit_rate[0];
}

}  // namespace

int main() {
  DatasetSpec spec;
  spec.name = "DailySyn";
  spec.catalog.num_items = 4000;
  spec.catalog.num_leaf_categories = 16;
  spec.users.num_user_types = 300;
  spec.num_train_sessions = 12000;  // split into 4 "days" below
  spec.num_test_sessions = 800;
  auto dataset = SyntheticDataset::Generate(spec);
  if (!dataset.ok()) {
    std::cerr << dataset.status().ToString() << "\n";
    return 1;
  }
  TokenSpace ts = TokenSpace::Create(&dataset->catalog(), &dataset->users());

  // Day t trains on all sessions up to day t (a growing log window).
  const uint32_t kDays = 4;
  const size_t per_day = dataset->train_sessions().size() / kDays;

  SgnsOptions daily;
  daily.dim = 48;
  daily.negatives = 8;
  daily.epochs = 4;  // the short daily budget
  SgnsOptions cold_budget = daily;

  TablePrinter t({"day", "sessions", "warm HR@20", "cold HR@20",
                  "warm train s", "cold train s"});
  Vocabulary prev_vocab;
  EmbeddingModel prev_model;
  bool have_prev = false;

  for (uint32_t day = 1; day <= kDays; ++day) {
    std::vector<Session> window(dataset->train_sessions().begin(),
                                dataset->train_sessions().begin() +
                                    static_cast<long>(day * per_day));
    Corpus corpus;
    if (auto st = corpus.Build(window, ts, dataset->catalog(), CorpusOptions{});
        !st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }

    // Warm daily run.
    SgnsOptions warm_opts = daily;
    EmbeddingModel warm;
    if (auto st = warm.Init(corpus.vocab().size(), daily.dim, 1); !st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
    if (have_prev) {
      if (auto st = WarmStartFrom(prev_vocab, prev_model, corpus.vocab(), &warm);
          !st.ok()) {
        std::cerr << st.ToString() << "\n";
        return 1;
      }
      warm_opts.warm_start = true;
    }
    TrainStats warm_stats;
    if (auto st = SgnsTrainer(warm_opts).Train(corpus, &warm, &warm_stats);
        !st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }

    // Cold restart with the same daily budget.
    EmbeddingModel cold;
    TrainStats cold_stats;
    if (auto st = SgnsTrainer(cold_budget).Train(corpus, &cold, &cold_stats);
        !st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }

    // Keep yesterday's state for the next warm start before handing the
    // vectors to the model wrapper.
    prev_vocab = corpus.vocab();
    prev_model = warm;
    have_prev = true;

    SisgConfig cfg;
    cfg.variant = SisgVariant::kSisgFU;
    const SisgModel warm_model(cfg, ts, corpus.vocab(), std::move(warm));
    const SisgModel cold_model(cfg, ts, corpus.vocab(), std::move(cold));
    t.AddRow({"day " + std::to_string(day), std::to_string(window.size()),
              TablePrinter::Fixed(Hr20(warm_model, dataset->test_sessions()), 4),
              TablePrinter::Fixed(Hr20(cold_model, dataset->test_sessions()), 4),
              TablePrinter::Fixed(warm_stats.seconds, 1),
              TablePrinter::Fixed(cold_stats.seconds, 1)});
  }
  t.Print(std::cout);
  std::cout << "Warm starts accumulate training across days: the same short "
               "daily budget yields a steadily better model.\n";
  return 0;
}
