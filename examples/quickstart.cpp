// Quickstart: generate a synthetic Taobao-like dataset, train SISG-F-U-D,
// query the matching engine, and save/load the model.
//
//   ./quickstart
//
// This is the 5-minute tour of the public API; see cold_start.cpp,
// distributed_training.cpp and matching_pipeline.cpp for deeper scenarios.

#include <iostream>

#include "core/pipeline.h"
#include "datagen/dataset.h"

using namespace sisg;  // examples only; library code never does this

int main() {
  // 1. A small synthetic item/user universe with Table-I style metadata.
  DatasetSpec spec;
  spec.name = "QuickstartSyn";
  spec.catalog.num_items = 4000;
  spec.catalog.num_leaf_categories = 16;
  spec.users.num_user_types = 300;
  spec.num_train_sessions = 8000;
  spec.num_test_sessions = 500;
  auto dataset = SyntheticDataset::Generate(spec);
  if (!dataset.ok()) {
    std::cerr << "dataset generation failed: " << dataset.status().ToString()
              << "\n";
    return 1;
  }
  std::cout << "Generated " << dataset->train_sessions().size()
            << " training sessions over " << dataset->catalog().num_items()
            << " items.\n";

  // 2. Train the full SISG variant: item SI + user types + directional
  //    (asymmetric) skip-gram sampling.
  SisgConfig config;
  config.variant = SisgVariant::kSisgFUD;
  config.sgns.dim = 48;
  config.sgns.epochs = 12;
  config.sgns.negatives = 8;
  SisgPipeline pipeline(config);
  PipelineReport report;
  auto model = pipeline.Train(*dataset, &report);
  if (!model.ok()) {
    std::cerr << "training failed: " << model.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Trained " << report.vocab_size << " embeddings ("
            << report.train.pairs_trained << " skip-gram pairs in "
            << report.train.seconds << "s).\n";

  // 3. Matching-stage retrieval: items likely to be clicked AFTER item 42.
  auto engine = model->BuildMatchingEngine();
  if (!engine.ok()) {
    std::cerr << engine.status().ToString() << "\n";
    return 1;
  }
  const uint32_t query = 42;
  std::cout << "\nTop-5 items following item_" << query << " (leaf "
            << dataset->catalog().meta(query).leaf_category << ", brand "
            << dataset->catalog().meta(query).brand << "):\n";
  for (const auto& r : engine->Query(query, 5)) {
    const ItemMeta& m = dataset->catalog().meta(r.id);
    std::cout << "  item_" << r.id << "  score=" << r.score << "  (leaf "
              << m.leaf_category << ", brand " << m.brand << ")\n";
  }

  // 4. Persist and reload.
  const std::string prefix = "/tmp/sisg_quickstart";
  if (auto st = model->Save(prefix); !st.ok()) {
    std::cerr << "save failed: " << st.ToString() << "\n";
    return 1;
  }
  TokenSpace ts = TokenSpace::Create(&dataset->catalog(), &dataset->users());
  auto reloaded = SisgModel::Load(prefix, config, ts);
  if (!reloaded.ok()) {
    std::cerr << "load failed: " << reloaded.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\nModel round-tripped through " << prefix << ".{vocab,emb} ("
            << reloaded->vocab().size() << " vectors).\n";
  return 0;
}
