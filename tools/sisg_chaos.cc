// sisg_chaos — fault-injecting client for sisg_serve. Points the seeded
// chaos harness (serve/chaos.h) at a live server: mid-frame disconnects,
// garbage frames, truncated headers, slow-loris dribbles and connection
// churn, each attack followed by an honest probe query that must keep
// succeeding. Optionally drives a reload storm at the same time: publishes
// fresh synthetic model versions into --reload_dir (the directory the
// server watches via --watch_dir), interleaving deliberately corrupt
// artifacts so validated rollback is exercised under fire.
//
//   sisg_chaos --port 7411 --modes all --connections 4 --duration 10
//   sisg_chaos --port 7411 --modes disconnect,truncate \
//              --reload_dir /tmp/watch --reload_interval_ms 300 \
//              --corrupt_every 3 --duration 15 --json_out chaos_row.json
//
// Exit code 0 means the server survived: every probe answered, the final
// HEALTH frame reports ready, and — when a reload storm ran — the served
// model version advanced past where it started (hot swaps really landed)
// while corrupt publishes did NOT take the server down. Anything else is 1.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/io_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "serve/chaos.h"
#include "serve/client.h"

using namespace sisg;

namespace {

/// A publish that must be REJECTED: a syntactically present but garbage
/// arena artifact behind an honest LATEST pointer. The watching server has
/// to fail validation, keep the old snapshot, and bump reload_failed.
Status PublishCorruptArena(const std::string& dir, const std::string& token,
                           uint64_t seed) {
  const std::string path = dir + "/" + token + ".arena";
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot write " + path);
  Rng rng(seed);
  uint8_t junk[512];
  for (auto& b : junk) b = static_cast<uint8_t>(rng.Next());
  const bool wrote = std::fwrite(junk, 1, sizeof(junk), f) == sizeof(junk);
  std::fclose(f);
  if (!wrote) return Status::IOError("short write " + path);
  SISG_ASSIGN_OR_RETURN(AtomicFile latest, AtomicFile::Create(dir + "/LATEST"));
  const std::string text = token + "\n";
  if (std::fwrite(text.data(), 1, text.size(), latest.stream()) !=
      text.size()) {
    return Status::IOError("cannot write LATEST");
  }
  return latest.Commit();
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  if (auto st = flags.Parse(
          argc, argv,
          {"host", "port", "modes", "connections", "duration", "items", "dim",
           "int8", "reload_dir", "reload_interval_ms", "corrupt_every", "seed",
           "json_out", "help"});
      !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 2;
  }
  if (flags.GetBool("help", false) || !flags.Has("port")) {
    std::cout
        << "usage: sisg_chaos --port P [options]\n"
           "  --host ADDR          server address (default 127.0.0.1)\n"
           "  --modes SPEC         disconnect|garbage|truncate|slowloris|\n"
           "                       churn|all plus seed=N (default all)\n"
           "  --connections N      chaos workers (default 4)\n"
           "  --duration S         seconds to run (default 10)\n"
           "  --items N            probe item space (default: ask HEALTH)\n"
           "  --reload_dir DIR     also storm-publish model versions here\n"
           "  --reload_interval_ms MS  publish cadence (default 500)\n"
           "  --corrupt_every K    every Kth publish is garbage (default 3;\n"
           "                       0 = never corrupt)\n"
           "  --dim D              published synth dim (default 64)\n"
           "  --int8               also publish int8 code arenas\n"
           "  --seed S             chaos + publish seed (default 1234)\n"
           "  --json_out FILE      write one result row as JSON\n";
    return flags.Has("port") ? 0 : 2;
  }

  const std::string host = flags.GetString("host", "127.0.0.1");
  const auto port = static_cast<uint16_t>(flags.GetInt64("port", 0));
  const auto conns = std::max<uint32_t>(
      1, static_cast<uint32_t>(flags.GetInt64("connections", 4)));
  const double duration = static_cast<double>(flags.GetInt64("duration", 10));
  const auto seed = static_cast<uint64_t>(flags.GetInt64("seed", 1234));
  const std::string reload_dir = flags.GetString("reload_dir", "");
  const auto reload_interval_ms = std::max<uint32_t>(
      10, static_cast<uint32_t>(flags.GetInt64("reload_interval_ms", 500)));
  const auto corrupt_every =
      static_cast<uint32_t>(flags.GetInt64("corrupt_every", 3));
  const auto dim =
      std::max<uint32_t>(1, static_cast<uint32_t>(flags.GetInt64("dim", 64)));
  const bool with_int8 = flags.GetBool("int8", false);

  auto plan_or = serve::ChaosPlan::Parse(flags.GetString("modes", "all"));
  if (!plan_or.ok()) {
    std::cerr << plan_or.status().ToString() << "\n";
    return 2;
  }
  serve::ChaosPlan plan = *plan_or;
  if (!flags.Has("modes")) {
    plan.mid_frame_disconnect = plan.garbage_frames = plan.truncated_frames =
        plan.slowloris = plan.connection_churn = true;
  }
  plan.seed = seed;

  // Baseline: the server must be up before chaos starts, and HEALTH tells
  // us the item space plus the version the storm has to move past.
  serve::ClientOptions copt;
  copt.connect_timeout_ms = 5000;
  copt.io_timeout_ms = 5000;
  serve::HealthInfo initial;
  {
    auto probe = serve::ServeClient::Connect(host, port, copt);
    if (!probe.ok()) {
      std::cerr << "cannot reach server: " << probe.status().ToString()
                << "\n";
      return 1;
    }
    if (auto st = probe->Health(&initial); !st.ok()) {
      std::cerr << "initial HEALTH failed: " << st.ToString() << "\n";
      return 1;
    }
    if (!initial.ready) {
      std::cerr << "server reports not ready before chaos even started\n";
      return 1;
    }
  }
  const auto items = flags.Has("items")
                         ? static_cast<uint32_t>(flags.GetInt64("items", 0))
                         : initial.num_items;

  const uint64_t deadline =
      MonotonicNanos() + static_cast<uint64_t>(duration * 1e9);
  std::printf("chaos: %u workers (%s) against %s:%u, %u items, model v%llu\n",
              conns, plan.ToString().c_str(), host.c_str(), port, items,
              static_cast<unsigned long long>(initial.model_version));

  serve::ChaosStats stats;
  std::vector<std::thread> workers;
  workers.reserve(conns);
  for (uint32_t c = 0; c < conns; ++c) {
    workers.emplace_back(serve::RunChaosWorker, host, port, plan, items,
                         deadline, static_cast<uint64_t>(c + 1), &stats);
  }

  uint64_t published_ok = 0;
  uint64_t published_corrupt = 0;
  std::thread publisher;
  if (!reload_dir.empty()) {
    publisher = std::thread([&] {
      uint64_t n = 0;
      while (MonotonicNanos() < deadline) {
        ++n;
        const bool corrupt = corrupt_every > 0 && n % corrupt_every == 0;
        const std::string token =
            (corrupt ? "bad-" : "chaos-") + std::to_string(n);
        const Status st =
            corrupt ? PublishCorruptArena(reload_dir, token, seed + n)
                    : serve::PublishSynthArena(reload_dir, token, items, dim,
                                               seed + n, with_int8);
        if (st.ok()) {
          corrupt ? ++published_corrupt : ++published_ok;
        } else {
          std::cerr << "publish " << token << " failed: " << st.ToString()
                    << "\n";
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(reload_interval_ms));
      }
    });
  }

  for (auto& w : workers) w.join();
  if (publisher.joinable()) publisher.join();

  // Verdict: every interleaved probe answered, the server still reports
  // ready, and — when a storm ran — the version gauge really moved.
  bool failed = stats.probes_failed.load() > 0;
  serve::HealthInfo final_health;
  {
    auto probe = serve::ServeClient::Connect(host, port, copt);
    if (!probe.ok() || !probe->Health(&final_health).ok() ||
        !final_health.ready) {
      std::cerr << "final HEALTH probe failed\n";
      failed = true;
    }
  }
  if (!reload_dir.empty() && published_ok > 0 &&
      final_health.model_version <= initial.model_version) {
    std::cerr << "reload storm published " << published_ok
              << " good versions but the served version never advanced (v"
              << initial.model_version << " -> v"
              << final_health.model_version << ")\n";
    failed = true;
  }

  std::printf(
      "chaos: %llu attacks (%llu disconnect, %llu garbage, %llu truncate, "
      "%llu slowloris, %llu churn) probes ok=%llu failed=%llu\n",
      static_cast<unsigned long long>(stats.attacks.load()),
      static_cast<unsigned long long>(stats.disconnects.load()),
      static_cast<unsigned long long>(stats.garbage.load()),
      static_cast<unsigned long long>(stats.truncated.load()),
      static_cast<unsigned long long>(stats.slowloris.load()),
      static_cast<unsigned long long>(stats.churns.load()),
      static_cast<unsigned long long>(stats.probes_ok.load()),
      static_cast<unsigned long long>(stats.probes_failed.load()));
  if (!reload_dir.empty()) {
    std::printf("chaos: published %llu good + %llu corrupt versions, served "
                "v%llu -> v%llu\n",
                static_cast<unsigned long long>(published_ok),
                static_cast<unsigned long long>(published_corrupt),
                static_cast<unsigned long long>(initial.model_version),
                static_cast<unsigned long long>(final_health.model_version));
  }
  std::printf("chaos: %s\n", failed ? "FAILED" : "survived");

  if (flags.Has("json_out")) {
    const std::string path = flags.GetString("json_out", "");
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::cerr << "cannot write --json_out " << path << "\n";
      return 1;
    }
    std::fprintf(
        f,
        "{\"attacks\": %llu, \"probes_ok\": %llu, \"probes_failed\": %llu, "
        "\"published_ok\": %llu, \"published_corrupt\": %llu, "
        "\"model_version_start\": %llu, \"model_version_end\": %llu, "
        "\"survived\": %s}\n",
        static_cast<unsigned long long>(stats.attacks.load()),
        static_cast<unsigned long long>(stats.probes_ok.load()),
        static_cast<unsigned long long>(stats.probes_failed.load()),
        static_cast<unsigned long long>(published_ok),
        static_cast<unsigned long long>(published_corrupt),
        static_cast<unsigned long long>(initial.model_version),
        static_cast<unsigned long long>(final_health.model_version),
        failed ? "false" : "true");
    std::fclose(f);
  }
  return failed ? 1 : 0;
}
