#ifndef SISG_TOOLS_TOOL_COMMON_H_
#define SISG_TOOLS_TOOL_COMMON_H_

#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.h"
#include "datagen/dataset.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/sampler.h"

namespace sisg::tools {

/// Shared --metrics_out / --metrics_interval handling. When either flag is
/// present, enables the metrics registry and (for a positive interval)
/// starts the background sampler, which logs periodic progress lines and
/// keeps the JSON artifact fresh. Finish() stops the sampler, writes the
/// final artifact, and prints the end-of-run summary table.
class ToolMetrics {
 public:
  static ToolMetrics FromFlags(const FlagParser& flags) {
    ToolMetrics m;
    m.json_path_ = flags.GetString("metrics_out", "");
    const double interval =
        static_cast<double>(flags.GetInt64("metrics_interval", 0));
    if (m.json_path_.empty() && interval <= 0.0) return m;
    obs::EnableMetrics(true);
    m.active_ = true;
    if (interval > 0.0) {
      obs::MetricsSampler::Options sopts;
      sopts.interval_seconds = interval;
      sopts.json_path = m.json_path_;
      m.sampler_ = std::make_unique<obs::MetricsSampler>(sopts);
      m.sampler_->Start();
    }
    return m;
  }

  /// Arms the SIGINT/SIGTERM watcher so an interrupted run still publishes
  /// its --metrics_out artifact before dying from the signal. No-op when
  /// metrics are off or no output path was requested.
  void InstallSignalFlush() {
    if (active_ && !json_path_.empty()) obs::FlushMetricsOnSignal(json_path_);
  }

  /// Returns 0, or 1 when writing the artifact failed (the tool's exit
  /// code should reflect a missing requested artifact).
  int Finish() {
    if (!active_) return 0;
    if (sampler_ != nullptr) sampler_->Stop();  // runs one final tick
    const obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
    int rc = 0;
    if (!json_path_.empty()) {
      if (auto st = obs::WriteMetricsFile(snap, json_path_); !st.ok()) {
        std::cerr << st.ToString() << "\n";
        rc = 1;
      } else {
        std::cout << "wrote metrics to " << json_path_ << "\n";
      }
    }
    obs::PrintSummary(snap, std::cout);
    active_ = false;
    return rc;
  }

 private:
  bool active_ = false;
  std::string json_path_;
  std::unique_ptr<obs::MetricsSampler> sampler_;
};

/// The world-spec flags shared by all tools. The catalog and user universe
/// are deterministic functions of these, so sisg_datagen / sisg_train /
/// sisg_query agree on the world as long as the flags match.
inline const std::vector<std::string> kWorldFlags = {
    "items", "leaves", "shops", "brands", "cities", "user_types", "world_seed"};

inline DatasetSpec SpecFromFlags(const FlagParser& flags) {
  DatasetSpec spec;
  spec.catalog.num_items =
      static_cast<uint32_t>(flags.GetInt64("items", 8000));
  spec.catalog.num_leaf_categories =
      static_cast<uint32_t>(flags.GetInt64("leaves", 32));
  spec.catalog.num_shops = static_cast<uint32_t>(flags.GetInt64("shops", 600));
  spec.catalog.num_brands =
      static_cast<uint32_t>(flags.GetInt64("brands", 300));
  spec.catalog.num_cities = static_cast<uint32_t>(flags.GetInt64("cities", 32));
  spec.catalog.seed =
      static_cast<uint64_t>(flags.GetInt64("world_seed", 42));
  spec.users.num_user_types =
      static_cast<uint32_t>(flags.GetInt64("user_types", 500));
  return spec;
}

/// Appends the world flags to a tool's own known-flags list.
inline std::vector<std::string> WithWorldFlags(std::vector<std::string> own) {
  own.insert(own.end(), kWorldFlags.begin(), kWorldFlags.end());
  return own;
}

}  // namespace sisg::tools

#endif  // SISG_TOOLS_TOOL_COMMON_H_
