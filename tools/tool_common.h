#ifndef SISG_TOOLS_TOOL_COMMON_H_
#define SISG_TOOLS_TOOL_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/flags.h"
#include "datagen/dataset.h"

namespace sisg::tools {

/// The world-spec flags shared by all tools. The catalog and user universe
/// are deterministic functions of these, so sisg_datagen / sisg_train /
/// sisg_query agree on the world as long as the flags match.
inline const std::vector<std::string> kWorldFlags = {
    "items", "leaves", "shops", "brands", "cities", "user_types", "world_seed"};

inline DatasetSpec SpecFromFlags(const FlagParser& flags) {
  DatasetSpec spec;
  spec.catalog.num_items =
      static_cast<uint32_t>(flags.GetInt64("items", 8000));
  spec.catalog.num_leaf_categories =
      static_cast<uint32_t>(flags.GetInt64("leaves", 32));
  spec.catalog.num_shops = static_cast<uint32_t>(flags.GetInt64("shops", 600));
  spec.catalog.num_brands =
      static_cast<uint32_t>(flags.GetInt64("brands", 300));
  spec.catalog.num_cities = static_cast<uint32_t>(flags.GetInt64("cities", 32));
  spec.catalog.seed =
      static_cast<uint64_t>(flags.GetInt64("world_seed", 42));
  spec.users.num_user_types =
      static_cast<uint32_t>(flags.GetInt64("user_types", 500));
  return spec;
}

/// Appends the world flags to a tool's own known-flags list.
inline std::vector<std::string> WithWorldFlags(std::vector<std::string> own) {
  own.insert(own.end(), kWorldFlags.begin(), kWorldFlags.end());
  return own;
}

}  // namespace sisg::tools

#endif  // SISG_TOOLS_TOOL_COMMON_H_
