// sisg_query — loads a model saved by sisg_train and serves top-K queries:
// per-item lookups, a full candidate-table export, or cold-start inference.
//
//   sisg_query --model /tmp/model --variant sisg-f-u-d --k 10 42 99 7
//   sisg_query --model /tmp/model --candidates /tmp/i2i.tsv --k 200
//   sisg_query --model /tmp/model --cold_gender F --cold_age 2

#include <cstdlib>
#include <iostream>

#include "common/flags.h"
#include "core/candidate_table.h"
#include "core/cold_start.h"
#include "core/pipeline.h"
#include "tools/tool_common.h"

using namespace sisg;

int main(int argc, char** argv) {
  FlagParser flags;
  const auto known = tools::WithWorldFlags(
      {"model", "variant", "k", "candidates", "threads", "cold_gender",
       "cold_age", "cold_purchase", "metrics_out", "metrics_interval",
       "help"});
  if (auto st = flags.Parse(argc, argv, known); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 2;
  }
  if (flags.GetBool("help", false) || !flags.Has("model")) {
    std::cout << "usage: sisg_query --model PREFIX [--variant sisg-f-u-d] "
                 "[--k 10] [item ids...]\n"
                 "  --candidates FILE   export the full item->top-K table\n"
                 "  --cold_gender F|M [--cold_age 0-6] [--cold_purchase 0-2]\n"
                 "  --metrics_out FILE  per-query latency percentiles (JSON)\n"
                 "  --metrics_interval SECONDS  periodic progress lines\n"
                 "  [world flags matching sisg_train]\n";
    return flags.Has("model") ? 0 : 2;
  }

  const DatasetSpec spec = tools::SpecFromFlags(flags);
  ItemCatalog catalog;
  UserUniverse users;
  if (auto st = catalog.Build(spec.catalog); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  if (auto st = users.Build(spec.users, catalog.num_tops()); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }

  SisgConfig config;
  config.variant = flags.GetString("variant", "sisg-f-u-d") == "sisg-f-u-d"
                       ? SisgVariant::kSisgFUD
                       : SisgVariant::kSisgFU;
  TokenSpace ts = TokenSpace::Create(&catalog, &users);
  auto model = SisgModel::Load(flags.GetString("model", ""), config, ts);
  if (!model.ok()) {
    std::cerr << "load failed: " << model.status().ToString() << "\n";
    return 1;
  }
  auto engine = model->BuildMatchingEngine();
  if (!engine.ok()) {
    std::cerr << engine.status().ToString() << "\n";
    return 1;
  }
  const uint32_t k = static_cast<uint32_t>(flags.GetInt64("k", 10));
  tools::ToolMetrics metrics = tools::ToolMetrics::FromFlags(flags);

  if (flags.Has("candidates")) {
    CandidateTable table;
    if (auto st = table.Build(*engine, k,
                              static_cast<uint32_t>(flags.GetInt64("threads", 1)));
        !st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
    const std::string path = flags.GetString("candidates", "candidates.tsv");
    if (auto st = table.SaveText(path); !st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
    std::cout << "exported top-" << k << " candidates for "
              << table.num_items() << " items to " << path << "\n";
    return metrics.Finish();
  }

  if (flags.Has("cold_gender")) {
    const std::string g = flags.GetString("cold_gender", "F");
    const int gender = g == "F" ? 0 : (g == "M" ? 1 : 2);
    std::vector<float> v;
    if (auto st = InferColdUserVector(
            *model, users, gender,
            static_cast<int>(flags.GetInt64("cold_age", -1)),
            static_cast<int>(flags.GetInt64("cold_purchase", -1)), &v);
        !st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
    std::cout << "cold-user top-" << k << ":";
    for (const auto& r : engine->QueryVector(v.data(), k)) {
      std::cout << " item_" << r.id;
    }
    std::cout << "\n";
    return metrics.Finish();
  }

  // Ad-hoc lookups go through the batched serving API so --threads applies
  // here too, not only to the candidate-table export.
  std::vector<uint32_t> items;
  items.reserve(flags.positional().size());
  for (const std::string& arg : flags.positional()) {
    items.push_back(
        static_cast<uint32_t>(std::strtoul(arg.c_str(), nullptr, 10)));
  }
  const auto results = engine->QueryBatch(
      items, k, static_cast<uint32_t>(flags.GetInt64("threads", 1)));
  for (size_t i = 0; i < items.size(); ++i) {
    std::cout << "item_" << items[i] << " ->";
    if (results[i].empty()) std::cout << " (untrained or unknown item)";
    for (const auto& r : results[i]) {
      std::cout << " item_" << r.id << ":" << r.score;
    }
    std::cout << "\n";
  }
  return metrics.Finish();
}
