// sisg_query — loads a model saved by sisg_train and serves top-K queries:
// per-item lookups, a full candidate-table export, or cold-start inference.
//
//   sisg_query --model /tmp/model --variant sisg-f-u-d --k 10 42 99 7
//   sisg_query --model /tmp/model --candidates /tmp/i2i.tsv --k 200
//   sisg_query --model /tmp/model --cold_gender F --cold_age 2
//   sisg_query --model /tmp/model --save_arena /tmp/serve
//   sisg_query --arena /tmp/serve --quant int8 --mmap --k 10 42 99 7

#include <cstdlib>
#include <iostream>
#include <utility>

#include "common/flags.h"
#include "core/candidate_table.h"
#include "core/cold_start.h"
#include "core/matching_engine.h"
#include "core/pipeline.h"
#include "tools/tool_common.h"

using namespace sisg;

namespace {

/// Switches the candidate scan to the requested precision. Enable failures
/// follow the engine's degradation contract — warn and keep serving fp32.
void ApplyQuant(MatchingEngine& engine, const std::string& quant,
                const std::string& arena_prefix, bool use_mmap) {
  if (quant == "int8") {
    const Status st =
        arena_prefix.empty()
            ? engine.EnableInt8()
            : engine.EnableInt8FromFile(arena_prefix + ".qarena", use_mmap);
    if (!st.ok()) {
      std::cerr << "int8 enable failed (serving fp32): " << st.ToString()
                << "\n";
    }
  } else if (quant == "pq") {
    if (auto st = engine.EnableIvfPq(IvfOptions{}, PqOptions{}); !st.ok()) {
      std::cerr << "pq enable failed (serving fp32): " << st.ToString()
                << "\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  const auto known = tools::WithWorldFlags(
      {"model", "variant", "k", "candidates", "threads", "cold_gender",
       "cold_age", "cold_purchase", "metrics_out", "metrics_interval",
       "quant", "mmap", "arena", "save_arena", "help"});
  if (auto st = flags.Parse(argc, argv, known); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 2;
  }
  const bool has_source = flags.Has("model") || flags.Has("arena");
  if (flags.GetBool("help", false) || !has_source) {
    std::cout << "usage: sisg_query --model PREFIX [--variant sisg-f-u-d] "
                 "[--k 10] [item ids...]\n"
                 "  --candidates FILE   export the full item->top-K table\n"
                 "  --cold_gender F|M [--cold_age 0-6] [--cold_purchase 0-2]\n"
                 "  --quant fp32|int8|pq  candidate-scan precision\n"
                 "  --save_arena PREFIX freeze serving state to PREFIX.arena "
                 "+ PREFIX.qarena\n"
                 "  --arena PREFIX      serve from PREFIX.arena (no model "
                 "load; int8 uses PREFIX.qarena)\n"
                 "  --mmap              map arena artifacts instead of "
                 "heap-loading them\n"
                 "  --metrics_out FILE  per-query latency percentiles (JSON)\n"
                 "  --metrics_interval SECONDS  periodic progress lines\n"
                 "  [world flags matching sisg_train]\n";
    return has_source ? 0 : 2;
  }

  const std::string quant = flags.GetString("quant", "fp32");
  if (quant != "fp32" && quant != "int8" && quant != "pq") {
    std::cerr << "unknown --quant '" << quant << "' (want fp32|int8|pq)\n";
    return 2;
  }
  const bool use_mmap = flags.GetBool("mmap", false);
  const uint32_t k = static_cast<uint32_t>(flags.GetInt64("k", 10));
  tools::ToolMetrics metrics = tools::ToolMetrics::FromFlags(flags);
  // A Ctrl-C'd candidate export still leaves its latency artifact behind.
  metrics.InstallSignalFlush();

  MatchingEngine engine;
  if (flags.Has("arena")) {
    // Arena serving: the frozen .arena artifact carries everything queries
    // need, so the model (and the catalog it requires) is never loaded.
    if (flags.Has("cold_gender") || flags.Has("save_arena")) {
      std::cerr << "--arena serves a frozen engine; it cannot be combined "
                   "with --cold_gender or --save_arena\n";
      return 2;
    }
    const std::string prefix = flags.GetString("arena", "");
    if (auto st = engine.LoadArena(prefix + ".arena", use_mmap); !st.ok()) {
      std::cerr << "arena load failed: " << st.ToString() << "\n";
      return 1;
    }
    ApplyQuant(engine, quant, prefix, use_mmap);
  } else {
    const DatasetSpec spec = tools::SpecFromFlags(flags);
    ItemCatalog catalog;
    UserUniverse users;
    if (auto st = catalog.Build(spec.catalog); !st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
    if (auto st = users.Build(spec.users, catalog.num_tops()); !st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }

    SisgConfig config;
    config.variant = flags.GetString("variant", "sisg-f-u-d") == "sisg-f-u-d"
                         ? SisgVariant::kSisgFUD
                         : SisgVariant::kSisgFU;
    TokenSpace ts = TokenSpace::Create(&catalog, &users);
    auto model = SisgModel::Load(flags.GetString("model", ""), config, ts);
    if (!model.ok()) {
      std::cerr << "load failed: " << model.status().ToString() << "\n";
      return 1;
    }
    auto built = model->BuildMatchingEngine();
    if (!built.ok()) {
      std::cerr << built.status().ToString() << "\n";
      return 1;
    }
    engine = std::move(*built);

    if (flags.Has("save_arena")) {
      // Offline freeze: the fp32 serving block plus its int8 shadow, so a
      // later --arena run can pick either precision without the model.
      const std::string prefix = flags.GetString("save_arena", "serve");
      if (auto st = engine.SaveArena(prefix + ".arena"); !st.ok()) {
        std::cerr << st.ToString() << "\n";
        return 1;
      }
      if (auto st = engine.EnableInt8(); !st.ok()) {
        std::cerr << st.ToString() << "\n";
        return 1;
      }
      if (auto st = engine.SaveInt8(prefix + ".qarena"); !st.ok()) {
        std::cerr << st.ToString() << "\n";
        return 1;
      }
      std::cout << "froze serving state for " << engine.num_items()
                << " items to " << prefix << ".arena + " << prefix
                << ".qarena\n";
      return metrics.Finish();
    }

    if (flags.Has("cold_gender")) {
      ApplyQuant(engine, quant, /*arena_prefix=*/"", use_mmap);
      const std::string g = flags.GetString("cold_gender", "F");
      const int gender = g == "F" ? 0 : (g == "M" ? 1 : 2);
      std::vector<float> v;
      if (auto st = InferColdUserVector(
              *model, users, gender,
              static_cast<int>(flags.GetInt64("cold_age", -1)),
              static_cast<int>(flags.GetInt64("cold_purchase", -1)), &v);
          !st.ok()) {
        std::cerr << st.ToString() << "\n";
        return 1;
      }
      std::cout << "cold-user top-" << k << ":";
      for (const auto& r : engine.QueryVector(v.data(), k)) {
        std::cout << " item_" << r.id;
      }
      std::cout << "\n";
      return metrics.Finish();
    }
    ApplyQuant(engine, quant, /*arena_prefix=*/"", use_mmap);
  }

  if (flags.Has("candidates")) {
    CandidateTable table;
    if (auto st = table.Build(engine, k,
                              static_cast<uint32_t>(flags.GetInt64("threads", 1)));
        !st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
    const std::string path = flags.GetString("candidates", "candidates.tsv");
    if (auto st = table.SaveText(path); !st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
    std::cout << "exported top-" << k << " candidates for "
              << table.num_items() << " items to " << path << "\n";
    return metrics.Finish();
  }

  // Ad-hoc lookups go through the batched serving API so --threads applies
  // here too, not only to the candidate-table export.
  std::vector<uint32_t> items;
  items.reserve(flags.positional().size());
  for (const std::string& arg : flags.positional()) {
    items.push_back(
        static_cast<uint32_t>(std::strtoul(arg.c_str(), nullptr, 10)));
  }
  const auto results = engine.QueryBatch(
      items, k, static_cast<uint32_t>(flags.GetInt64("threads", 1)));
  for (size_t i = 0; i < items.size(); ++i) {
    std::cout << "item_" << items[i] << " ->";
    if (results[i].empty()) std::cout << " (untrained or unknown item)";
    for (const auto& r : results[i]) {
      std::cout << " item_" << r.id << ":" << r.score;
    }
    std::cout << "\n";
  }
  return metrics.Finish();
}
