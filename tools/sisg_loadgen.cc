// sisg_loadgen — load client for sisg_serve. Drives the wire protocol in
// closed-loop (N connections, back-to-back round trips: throughput ceiling
// at a given concurrency) or open-loop (target arrival rate with
// exponential or heavy-tailed Pareto inter-arrivals: latency under a load
// the server does not control) mode, and reports latency percentiles plus
// admission-control outcomes.
//
//   sisg_loadgen --port 7411 --mode closed --connections 8 --duration 5
//   sisg_loadgen --port 7411 --mode open --qps 20000 --arrival pareto \
//                --duration 5 --json_out bench_row.json
//
// Exit code: 0 on a clean run, 1 when any transport/protocol error occurred
// or nothing completed — so CI can use the binary directly as a smoke
// check. BUSY replies are not errors: they are the server's backpressure
// working as designed, and are reported in their own column. The same goes
// for client-side timeouts (--timeout_ms), retries after BUSY (jittered
// backoff) and server-side DEADLINE sheds — each gets its own column and
// none of them fail the run.
//
// --chaos MODES additionally runs fault-injecting workers (serve/chaos.h)
// alongside the load — mid-frame disconnects, garbage frames, slow-loris,
// connection churn — and fails the run only if the server stops answering
// honest probes.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/flat_hash.h"
#include "common/rng.h"
#include "common/timer.h"
#include "serve/chaos.h"
#include "serve/client.h"

using namespace sisg;

namespace {

struct WorkerStats {
  std::vector<double> latencies_ms;
  uint64_t completed = 0;  // kOk responses
  uint64_t busy = 0;       // kBusy / kShuttingDown rejections
  uint64_t bad = 0;        // kBadRequest
  uint64_t deadline = 0;   // server-side DEADLINE_EXCEEDED sheds
  uint64_t timeouts = 0;   // client-side --timeout_ms expiries
  uint64_t retries = 0;    // re-issues after BUSY (jittered backoff)
  uint64_t errors = 0;     // transport/protocol failures
};

double Quantile(std::vector<double>& v, double q) {
  if (v.empty()) return 0.0;
  const size_t idx = std::min(
      v.size() - 1, static_cast<size_t>(q * static_cast<double>(v.size())));
  std::nth_element(v.begin(), v.begin() + static_cast<long>(idx), v.end());
  return v[idx];
}

void Tally(WorkerStats* s, serve::WireStatus status, double ms) {
  switch (status) {
    case serve::WireStatus::kOk:
      s->completed++;
      s->latencies_ms.push_back(ms);
      break;
    case serve::WireStatus::kBadRequest:
      s->bad++;
      break;
    case serve::WireStatus::kDeadlineExceeded:
      s->deadline++;
      break;
    default:
      s->busy++;
  }
}

/// Closed loop: one synchronous round trip after another until the deadline.
/// A BUSY reply backs off (jittered, so retry storms decorrelate across
/// connections) and re-issues the same item; a client-side timeout drops
/// the desynchronized connection and reconnects. Both are their own
/// columns, not errors.
void ClosedLoopWorker(const std::string& host, uint16_t port, uint32_t items,
                      uint32_t k, uint64_t seed, uint64_t deadline_ns,
                      uint32_t timeout_ms, WorkerStats* s) {
  serve::ClientOptions copt;
  copt.connect_timeout_ms = timeout_ms;
  copt.io_timeout_ms = timeout_ms;
  auto client = serve::ServeClient::Connect(host, port, copt);
  if (!client.ok()) {
    s->errors++;
    return;
  }
  Rng rng(seed);
  bool retry_pending = false;
  uint32_t item = 0;
  while (MonotonicNanos() < deadline_ns) {
    if (!retry_pending) {
      item = static_cast<uint32_t>(rng.UniformU64(items));
    }
    retry_pending = false;
    serve::QueryResponse resp;
    const uint64_t t0 = MonotonicNanos();
    if (auto st = client->Query(item, k, &resp); !st.ok()) {
      if (st.code() == StatusCode::kDeadlineExceeded) {
        // The stream may hold a half-frame now; only a fresh connection is
        // safe. The timeout is its own column — the server may be fine.
        s->timeouts++;
        client->Close();
        client = serve::ServeClient::Connect(host, port, copt);
        if (!client.ok()) {
          s->errors++;
          return;
        }
        continue;
      }
      s->errors++;
      return;  // transport gone; this connection is done
    }
    Tally(s, resp.status, static_cast<double>(MonotonicNanos() - t0) * 1e-6);
    if (resp.status == serve::WireStatus::kBusy) {
      // Jittered exponential-ish backoff before re-issuing: 200..1000us,
      // enough to let a drained queue slot open without idling the worker.
      std::this_thread::sleep_for(
          std::chrono::microseconds(200 + rng.UniformU64(800)));
      s->retries++;
      retry_pending = true;
    }
  }
}

/// Open loop: a sender thread fires at scheduled arrival instants without
/// waiting for replies; a reader thread drains responses and matches them to
/// send timestamps by request id. The two threads touch opposite directions
/// of the same socket, which is safe.
void OpenLoopWorker(const std::string& host, uint16_t port, uint32_t items,
                    uint32_t k, uint64_t seed, uint64_t deadline_ns,
                    double rate_per_conn, const std::string& arrival,
                    uint32_t timeout_ms, WorkerStats* s) {
  serve::ClientOptions copt;
  copt.connect_timeout_ms = timeout_ms;
  copt.io_timeout_ms = timeout_ms;
  auto client = serve::ServeClient::Connect(host, port, copt);
  if (!client.ok()) {
    s->errors++;
    return;
  }
  std::mutex mu;
  FlatHashMap<uint64_t, uint64_t> inflight;  // id -> send ns
  std::atomic<bool> send_failed{false};
  std::atomic<bool> timed_out{false};
  std::atomic<uint64_t> sent{0};

  std::thread reader([&] {
    uint64_t got = 0;
    for (;;) {
      serve::QueryResponse resp;
      if (auto st = client->ReadResponse(&resp); !st.ok()) {
        // A timeout mid-frame desynchronizes the pipelined stream — the
        // whole connection is done, and its unanswered sends are counted
        // as timeouts (not transport errors) below. EOF after the sender
        // closed is the clean end; any other mid-run failure is an error,
        // which the outer loop detects via counts.
        if (st.code() == StatusCode::kDeadlineExceeded) {
          s->timeouts++;
          timed_out.store(true);
        }
        return;
      }
      uint64_t t0 = 0;
      {
        std::lock_guard<std::mutex> lock(mu);
        if (const uint64_t* sent = inflight.Find(resp.request_id)) {
          t0 = *sent;
          inflight.Erase(resp.request_id);
        }
      }
      if (t0 == 0) {
        s->errors++;  // response to a request we never sent
        continue;
      }
      Tally(s, resp.status,
            static_cast<double>(MonotonicNanos() - t0) * 1e-6);
      // Stop once every sent request is answered and the deadline passed.
      ++got;
      if (MonotonicNanos() >= deadline_ns &&
          got >= sent.load(std::memory_order_acquire)) {
        return;
      }
    }
  });

  Rng rng(seed);
  uint64_t next_id = 1;
  double next_ns = static_cast<double>(MonotonicNanos());
  const double mean_gap_ns = 1e9 / rate_per_conn;
  // Pareto with alpha=1.5 scaled to the same mean as the exponential:
  // bursty heavy-tailed arrivals that stress the adaptive flush deadline.
  const double pareto_alpha = 1.5;
  const double pareto_xm = mean_gap_ns * (pareto_alpha - 1.0) / pareto_alpha;
  while (MonotonicNanos() < deadline_ns &&
         !timed_out.load(std::memory_order_relaxed)) {
    const double u = std::max(1e-12, rng.UniformDouble());
    const double gap = arrival == "pareto"
                           ? pareto_xm * std::pow(u, -1.0 / pareto_alpha)
                           : -mean_gap_ns * std::log(u);
    next_ns += gap;
    while (static_cast<double>(MonotonicNanos()) < next_ns) {
      const double ahead_us =
          (next_ns - static_cast<double>(MonotonicNanos())) * 1e-3;
      if (ahead_us > 100.0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(static_cast<int64_t>(ahead_us / 2)));
      }
    }
    const auto item = static_cast<uint32_t>(rng.UniformU64(items));
    const uint64_t id = next_id++;
    {
      std::lock_guard<std::mutex> lock(mu);
      inflight[id] = MonotonicNanos();
    }
    if (auto st = client->SendQuery(id, item, k); !st.ok()) {
      std::lock_guard<std::mutex> lock(mu);
      inflight.Erase(id);
      if (st.code() == StatusCode::kDeadlineExceeded) {
        s->timeouts++;
        timed_out.store(true);
      } else {
        send_failed.store(true);
      }
      break;
    }
    sent.fetch_add(1, std::memory_order_release);
  }
  // Give in-flight replies a bounded grace period, then drop the socket to
  // unblock the reader. Generous because an overloaded single-core host
  // runs the server and every loadgen thread on the same core.
  const uint64_t grace_end = MonotonicNanos() + 6'000'000'000ull;
  while (MonotonicNanos() < grace_end &&
         !timed_out.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(mu);
    if (inflight.empty()) break;
    std::this_thread::yield();
  }
  client->Close();
  reader.join();
  if (send_failed.load()) s->errors++;
  std::lock_guard<std::mutex> lock(mu);
  // Unanswered sends: a timed-out connection abandons its tail as timeouts
  // (the server may well be fine); otherwise be strict and count them as
  // errors even if tail replies merely raced the close.
  if (timed_out.load()) {
    s->timeouts += inflight.size();
  } else {
    s->errors += inflight.size();
  }
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  if (auto st = flags.Parse(
          argc, argv,
          {"host", "port", "mode", "connections", "qps", "arrival", "duration",
           "items", "k", "seed", "timeout_ms", "chaos", "chaos_connections",
           "json_out", "name", "help"});
      !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 2;
  }
  if (flags.GetBool("help", false) || !flags.Has("port")) {
    std::cout << "usage: sisg_loadgen --port P [options]\n"
                 "  --host ADDR        server address (default 127.0.0.1)\n"
                 "  --mode closed|open closed: back-to-back round trips;\n"
                 "                     open: scheduled arrivals (default "
                 "closed)\n"
                 "  --connections N    concurrent connections (default 4)\n"
                 "  --qps Q            open-loop total arrival rate\n"
                 "  --arrival exp|pareto  open-loop inter-arrival law\n"
                 "  --duration S       seconds to run (default 5)\n"
                 "  --items N          item-id space to sample (default "
                 "8000)\n"
                 "  --k K              top-k per query (default 10)\n"
                 "  --timeout_ms MS    client connect/io timeout (0 = none);\n"
                 "                     expiries land in their own column\n"
                 "  --chaos MODES      also run fault injectors: comma list\n"
                 "                     of disconnect|garbage|truncate|\n"
                 "                     slowloris|churn|all, plus seed=N\n"
                 "  --chaos_connections N  chaos workers (default 2)\n"
                 "  --json_out FILE    write one bench row as JSON\n"
                 "  --name LABEL       row label (default the mode)\n";
    return flags.Has("port") ? 0 : 2;
  }

  const std::string host = flags.GetString("host", "127.0.0.1");
  const auto port = static_cast<uint16_t>(flags.GetInt64("port", 0));
  const std::string mode = flags.GetString("mode", "closed");
  if (mode != "closed" && mode != "open") {
    std::cerr << "unknown --mode '" << mode << "' (want closed|open)\n";
    return 2;
  }
  const std::string arrival = flags.GetString("arrival", "exp");
  if (arrival != "exp" && arrival != "pareto") {
    std::cerr << "unknown --arrival '" << arrival << "' (want exp|pareto)\n";
    return 2;
  }
  const auto conns =
      std::max<uint32_t>(1, static_cast<uint32_t>(
                                flags.GetInt64("connections", 4)));
  const double qps = static_cast<double>(flags.GetInt64("qps", 1000));
  const double duration = static_cast<double>(flags.GetInt64("duration", 5));
  const auto items =
      static_cast<uint32_t>(flags.GetInt64("items", 8000));
  const auto k = static_cast<uint32_t>(flags.GetInt64("k", 10));
  const auto seed = static_cast<uint64_t>(flags.GetInt64("seed", 1));
  const auto timeout_ms =
      static_cast<uint32_t>(flags.GetInt64("timeout_ms", 0));

  serve::ChaosPlan chaos_plan;
  if (flags.Has("chaos")) {
    auto plan = serve::ChaosPlan::Parse(flags.GetString("chaos", ""));
    if (!plan.ok()) {
      std::cerr << plan.status().ToString() << "\n";
      return 2;
    }
    chaos_plan = *plan;
  }
  const auto chaos_conns = std::max<uint32_t>(
      1, static_cast<uint32_t>(flags.GetInt64("chaos_connections", 2)));

  const uint64_t t_start = MonotonicNanos();
  const uint64_t deadline =
      t_start + static_cast<uint64_t>(duration * 1e9);
  std::vector<WorkerStats> stats(conns);
  std::vector<std::thread> workers;
  workers.reserve(conns);
  for (uint32_t c = 0; c < conns; ++c) {
    if (mode == "closed") {
      workers.emplace_back(ClosedLoopWorker, host, port, items, k,
                           seed + c * 7919, deadline, timeout_ms, &stats[c]);
    } else {
      workers.emplace_back(OpenLoopWorker, host, port, items, k,
                           seed + c * 7919, deadline, qps / conns, arrival,
                           timeout_ms, &stats[c]);
    }
  }
  serve::ChaosStats chaos_stats;
  std::vector<std::thread> chaos_workers;
  if (chaos_plan.Active()) {
    std::cerr << "chaos: running " << chaos_conns << " workers ("
              << chaos_plan.ToString() << ")\n";
    chaos_workers.reserve(chaos_conns);
    for (uint32_t c = 0; c < chaos_conns; ++c) {
      chaos_workers.emplace_back(serve::RunChaosWorker, host, port, chaos_plan,
                                 items, deadline, static_cast<uint64_t>(c + 1),
                                 &chaos_stats);
    }
  }
  for (auto& w : workers) w.join();
  for (auto& w : chaos_workers) w.join();
  const double elapsed =
      static_cast<double>(MonotonicNanos() - t_start) * 1e-9;

  WorkerStats total;
  for (auto& s : stats) {
    total.completed += s.completed;
    total.busy += s.busy;
    total.bad += s.bad;
    total.deadline += s.deadline;
    total.timeouts += s.timeouts;
    total.retries += s.retries;
    total.errors += s.errors;
    total.latencies_ms.insert(total.latencies_ms.end(),
                              s.latencies_ms.begin(), s.latencies_ms.end());
  }
  const double actual_qps =
      elapsed > 0 ? static_cast<double>(total.completed) / elapsed : 0.0;
  const double p50 = Quantile(total.latencies_ms, 0.50);
  const double p90 = Quantile(total.latencies_ms, 0.90);
  const double p99 = Quantile(total.latencies_ms, 0.99);
  const double pmax =
      total.latencies_ms.empty()
          ? 0.0
          : *std::max_element(total.latencies_ms.begin(),
                              total.latencies_ms.end());

  const std::string name = flags.GetString("name", mode);
  std::printf(
      "%s: %llu ok, %llu busy, %llu bad, %llu deadline, %llu timeouts, "
      "%llu retries, %llu errors in %.2fs "
      "(%.0f qps) latency ms p50=%.3f p90=%.3f p99=%.3f max=%.3f\n",
      name.c_str(), static_cast<unsigned long long>(total.completed),
      static_cast<unsigned long long>(total.busy),
      static_cast<unsigned long long>(total.bad),
      static_cast<unsigned long long>(total.deadline),
      static_cast<unsigned long long>(total.timeouts),
      static_cast<unsigned long long>(total.retries),
      static_cast<unsigned long long>(total.errors), elapsed, actual_qps, p50,
      p90, p99, pmax);

  // After a chaos run the server must still be alive and answering: one
  // final health probe on a fresh connection decides pass/fail together
  // with the per-attack probe tallies.
  bool chaos_failed = false;
  if (chaos_plan.Active()) {
    std::printf(
        "chaos: %llu attacks (%llu disconnect, %llu garbage, %llu truncate, "
        "%llu slowloris, %llu churn) probes ok=%llu failed=%llu\n",
        static_cast<unsigned long long>(chaos_stats.attacks.load()),
        static_cast<unsigned long long>(chaos_stats.disconnects.load()),
        static_cast<unsigned long long>(chaos_stats.garbage.load()),
        static_cast<unsigned long long>(chaos_stats.truncated.load()),
        static_cast<unsigned long long>(chaos_stats.slowloris.load()),
        static_cast<unsigned long long>(chaos_stats.churns.load()),
        static_cast<unsigned long long>(chaos_stats.probes_ok.load()),
        static_cast<unsigned long long>(chaos_stats.probes_failed.load()));
    chaos_failed = chaos_stats.probes_failed.load() > 0;
    serve::ClientOptions copt;
    copt.connect_timeout_ms = 5000;
    copt.io_timeout_ms = 5000;
    auto probe = serve::ServeClient::Connect(host, port, copt);
    serve::HealthInfo health;
    if (!probe.ok() || !probe->Health(&health).ok() || !health.ready) {
      std::fprintf(stderr, "chaos: final health probe FAILED\n");
      chaos_failed = true;
    } else {
      std::printf("chaos: final health ok (model v%llu, %u items)\n",
                  static_cast<unsigned long long>(health.model_version),
                  health.num_items);
    }
  }

  if (flags.Has("json_out")) {
    const std::string path = flags.GetString("json_out", "");
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::cerr << "cannot write --json_out " << path << "\n";
      return 1;
    }
    std::fprintf(
        f,
        "{\"name\": \"%s\", \"mode\": \"%s\", \"connections\": %u, "
        "\"duration_s\": %.3f, \"completed\": %llu, \"busy\": %llu, "
        "\"bad\": %llu, \"deadline\": %llu, \"timeouts\": %llu, "
        "\"retries\": %llu, \"errors\": %llu, \"qps\": %.1f, "
        "\"p50_ms\": %.4f, \"p90_ms\": %.4f, \"p99_ms\": %.4f, "
        "\"max_ms\": %.4f, \"chaos_attacks\": %llu, "
        "\"chaos_probes_ok\": %llu, \"chaos_probes_failed\": %llu}\n",
        name.c_str(), mode.c_str(), conns, elapsed,
        static_cast<unsigned long long>(total.completed),
        static_cast<unsigned long long>(total.busy),
        static_cast<unsigned long long>(total.bad),
        static_cast<unsigned long long>(total.deadline),
        static_cast<unsigned long long>(total.timeouts),
        static_cast<unsigned long long>(total.retries),
        static_cast<unsigned long long>(total.errors), actual_qps, p50, p90,
        p99, pmax,
        static_cast<unsigned long long>(chaos_stats.attacks.load()),
        static_cast<unsigned long long>(chaos_stats.probes_ok.load()),
        static_cast<unsigned long long>(chaos_stats.probes_failed.load()));
    std::fclose(f);
  }
  return (total.errors > 0 || total.completed == 0 || chaos_failed) ? 1 : 0;
}
