// sisg_datagen — generates a synthetic click-session corpus and writes it
// as text (the interchange format consumed by sisg_train).
//
//   sisg_datagen --sessions 20000 --items 8000 --out /tmp/sessions.txt
//
// The item catalog and user universe are deterministic functions of the
// world flags (--items/--leaves/.../--world_seed); pass the same flags to
// sisg_train and sisg_query.

#include <cstdio>
#include <iostream>

#include "common/flags.h"
#include "tools/tool_common.h"

using namespace sisg;

int main(int argc, char** argv) {
  FlagParser flags;
  const auto known = tools::WithWorldFlags(
      {"sessions", "session_seed", "out", "stats", "help"});
  if (auto st = flags.Parse(argc, argv, known); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 2;
  }
  if (flags.GetBool("help", false)) {
    std::cout << "usage: sisg_datagen --sessions N --out FILE [world flags]\n"
                 "world flags: --items --leaves --shops --brands --cities "
                 "--user_types --world_seed\n";
    return 0;
  }

  DatasetSpec spec = tools::SpecFromFlags(flags);
  spec.num_train_sessions =
      static_cast<uint32_t>(flags.GetInt64("sessions", 20000));
  spec.model.seed = static_cast<uint64_t>(flags.GetInt64("session_seed", 1234));
  spec.num_test_sessions = 1;

  auto dataset = SyntheticDataset::Generate(spec);
  if (!dataset.ok()) {
    std::cerr << "generation failed: " << dataset.status().ToString() << "\n";
    return 1;
  }
  const std::string out = flags.GetString("out", "sessions.txt");
  if (auto st = WriteSessionsText(dataset->train_sessions(), dataset->users(), out);
      !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  std::cout << "wrote " << dataset->train_sessions().size() << " sessions to "
            << out << "\n";

  if (flags.GetBool("stats", false)) {
    const DatasetStats stats = ComputeDatasetStats(*dataset, 4, 20);
    std::cout << "items=" << stats.num_items
              << " user_types=" << stats.num_user_types
              << " tokens=" << stats.num_tokens
              << " positive_pairs=" << stats.num_positive_pairs
              << " asymmetry=" << stats.asymmetry_rate << "\n";
  }
  return 0;
}
