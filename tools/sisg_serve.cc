// sisg_serve — long-lived TCP serving process. Loads a frozen arena (or a
// trained model, or a deterministic synthetic corpus for benches), then
// coalesces concurrent single-item requests into micro-batches dispatched
// through the SIMD batch scan.
//
//   sisg_serve --arena /tmp/serve --quant int8 --port 7411
//   sisg_serve --model /tmp/model --variant sisg-f-u-d --port 0
//              --port_file /tmp/port
//   sisg_serve --synth_items 20000 --synth_dim 128 --max_batch 32
//              --metrics_out /tmp/serve_metrics.json
//   sisg_serve --arena /tmp/serve --watch_dir /tmp/serve
//              --reload_interval_ms 500 --port_file /tmp/port
//
// With --watch_dir the process hot-swaps models without restarting: a
// background reloader polls <dir>/LATEST and, when the token changes, loads
// + validates the new artifacts off the serving path and atomically
// publishes them; a bad deploy rolls back to the serving snapshot and the
// process keeps answering. --port_file is written only after the listener
// is accepting AND the initial snapshot passed the same validation gate, so
// "port file exists" means "ready for traffic".
//
// Runs until SIGTERM/SIGINT, then drains gracefully: stops accepting,
// flushes every queued request through the scan path, pushes pending
// responses out, writes --metrics_out through the shared export path, and
// exits 0.

#include <signal.h>

#include <cstdio>
#include <iostream>
#include <utility>

#include "common/flags.h"
#include "common/rng.h"
#include "core/matching_engine.h"
#include "core/pipeline.h"
#include "serve/model_registry.h"
#include "serve/reloader.h"
#include "serve/server.h"
#include "tools/tool_common.h"

using namespace sisg;

namespace {

/// Same degradation contract as sisg_query: a failed quant enable warns and
/// keeps serving fp32.
void ApplyQuant(MatchingEngine& engine, const std::string& quant,
                const std::string& arena_prefix, bool use_mmap) {
  if (quant == "int8") {
    const Status st =
        arena_prefix.empty()
            ? engine.EnableInt8()
            : engine.EnableInt8FromFile(arena_prefix + ".qarena", use_mmap);
    if (!st.ok()) {
      std::cerr << "int8 enable failed (serving fp32): " << st.ToString()
                << "\n";
    }
  } else if (quant == "pq") {
    if (auto st = engine.EnableIvfPq(IvfOptions{}, PqOptions{}); !st.ok()) {
      std::cerr << "pq enable failed (serving fp32): " << st.ToString()
                << "\n";
    }
  }
}

/// Deterministic random corpus for benchmarks and smoke tests: no training
/// run needed, same seed -> same engine -> same answers.
Status BuildSynthEngine(MatchingEngine* engine, uint32_t items, uint32_t dim,
                        uint64_t seed) {
  Rng rng(seed);
  std::vector<float> in(static_cast<size_t>(items) * dim);
  for (float& v : in) v = static_cast<float>(rng.Gaussian());
  return engine->Build(std::move(in), {}, items, dim,
                       SimilarityMode::kCosineInput);
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  const auto known = tools::WithWorldFlags(
      {"host", "port", "port_file", "arena", "model", "variant", "quant",
       "mmap", "synth_items", "synth_dim", "synth_seed", "io_threads",
       "max_connections", "max_batch", "max_wait_us", "queue_capacity",
       "dispatch_threads", "scan_threads", "deadline_ms", "idle_timeout_ms",
       "watch_dir", "reload_interval_ms", "metrics_out", "metrics_interval",
       "help"});
  if (auto st = flags.Parse(argc, argv, known); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 2;
  }
  const bool has_source =
      flags.Has("arena") || flags.Has("model") || flags.Has("synth_items");
  if (flags.GetBool("help", false) || !has_source) {
    std::cout
        << "usage: sisg_serve (--arena PREFIX | --model PREFIX | "
           "--synth_items N) [options]\n"
           "  --host ADDR         bind address (default 127.0.0.1)\n"
           "  --port P            TCP port; 0 picks an ephemeral port\n"
           "  --port_file FILE    write the bound port (scripts/tests)\n"
           "  --quant fp32|int8|pq  candidate-scan precision\n"
           "  --mmap              map arena artifacts instead of loading\n"
           "  --synth_items N --synth_dim D --synth_seed S\n"
           "                      serve a deterministic random corpus\n"
           "  --io_threads N      epoll front-end threads (default 2)\n"
           "  --max_connections N concurrent connection cap (default 1024)\n"
           "  --max_batch N       micro-batch size bound (default 32)\n"
           "  --max_wait_us U     adaptive flush deadline (default 200)\n"
           "  --queue_capacity N  admission bound; full -> BUSY (default "
           "1024)\n"
           "  --dispatch_threads N  batch dispatcher threads (default 1)\n"
           "  --scan_threads N    per-batch scan fan-out (default 1)\n"
           "  --deadline_ms MS    shed queued requests older than this with\n"
           "                      a typed DEADLINE reply (0 = off)\n"
           "  --idle_timeout_ms MS  evict silent / stalled-frame\n"
           "                      connections (slow-loris; 0 = off)\n"
           "  --watch_dir DIR     hot-swap: poll DIR/LATEST and atomically\n"
           "                      publish validated new model versions\n"
           "  --reload_interval_ms MS  LATEST poll cadence (default 1000)\n"
           "  --metrics_out FILE  export on drain (.prom -> Prometheus)\n"
           "  --metrics_interval SECONDS  periodic sampler\n"
           "  [world flags matching sisg_train when using --model]\n";
    return has_source ? 0 : 2;
  }

  const std::string quant = flags.GetString("quant", "fp32");
  if (quant != "fp32" && quant != "int8" && quant != "pq") {
    std::cerr << "unknown --quant '" << quant << "' (want fp32|int8|pq)\n";
    return 2;
  }
  const bool use_mmap = flags.GetBool("mmap", false);

  // Block the shutdown signals in every thread the server will spawn; the
  // main thread collects them with sigwait below, so "kill -TERM" turns into
  // a graceful drain instead of sudden death.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  tools::ToolMetrics metrics = tools::ToolMetrics::FromFlags(flags);

  MatchingEngine engine;
  if (flags.Has("arena")) {
    const std::string prefix = flags.GetString("arena", "");
    if (auto st = engine.LoadArena(prefix + ".arena", use_mmap); !st.ok()) {
      std::cerr << "arena load failed: " << st.ToString() << "\n";
      return 1;
    }
    ApplyQuant(engine, quant, prefix, use_mmap);
  } else if (flags.Has("model")) {
    const DatasetSpec spec = tools::SpecFromFlags(flags);
    ItemCatalog catalog;
    UserUniverse users;
    if (auto st = catalog.Build(spec.catalog); !st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
    if (auto st = users.Build(spec.users, catalog.num_tops()); !st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
    SisgConfig config;
    config.variant = flags.GetString("variant", "sisg-f-u-d") == "sisg-f-u-d"
                         ? SisgVariant::kSisgFUD
                         : SisgVariant::kSisgFU;
    TokenSpace ts = TokenSpace::Create(&catalog, &users);
    auto model = SisgModel::Load(flags.GetString("model", ""), config, ts);
    if (!model.ok()) {
      std::cerr << "load failed: " << model.status().ToString() << "\n";
      return 1;
    }
    auto built = model->BuildMatchingEngine();
    if (!built.ok()) {
      std::cerr << built.status().ToString() << "\n";
      return 1;
    }
    engine = std::move(*built);
    ApplyQuant(engine, quant, /*arena_prefix=*/"", use_mmap);
  } else {
    const auto items = static_cast<uint32_t>(flags.GetInt64("synth_items", 0));
    const auto dim = static_cast<uint32_t>(flags.GetInt64("synth_dim", 128));
    if (auto st = BuildSynthEngine(
            &engine, items, dim,
            static_cast<uint64_t>(flags.GetInt64("synth_seed", 42)));
        !st.ok()) {
      std::cerr << "synth build failed: " << st.ToString() << "\n";
      return 1;
    }
    ApplyQuant(engine, quant, /*arena_prefix=*/"", use_mmap);
  }

  serve::ServerOptions opts;
  opts.host = flags.GetString("host", "127.0.0.1");
  opts.port = static_cast<uint16_t>(flags.GetInt64("port", 0));
  opts.io_threads = static_cast<uint32_t>(flags.GetInt64("io_threads", 2));
  opts.max_connections =
      static_cast<uint32_t>(flags.GetInt64("max_connections", 1024));
  opts.batch.max_batch =
      static_cast<uint32_t>(flags.GetInt64("max_batch", 32));
  opts.batch.max_wait_us =
      static_cast<uint32_t>(flags.GetInt64("max_wait_us", 200));
  opts.batch.queue_capacity =
      static_cast<uint32_t>(flags.GetInt64("queue_capacity", 1024));
  opts.batch.dispatch_threads =
      static_cast<uint32_t>(flags.GetInt64("dispatch_threads", 1));
  opts.batch.scan_threads =
      static_cast<uint32_t>(flags.GetInt64("scan_threads", 1));
  opts.batch.deadline_us =
      static_cast<uint32_t>(flags.GetInt64("deadline_ms", 0)) * 1000;
  opts.idle_timeout_ms =
      static_cast<uint32_t>(flags.GetInt64("idle_timeout_ms", 0));

  // The initial snapshot goes through the SAME validation gate hot reloads
  // do; a process that cannot answer its own canaries must not advertise
  // readiness via --port_file.
  serve::ReloaderOptions ropts;
  ropts.watch_dir = flags.GetString("watch_dir", "");
  ropts.poll_interval_ms =
      static_cast<uint32_t>(flags.GetInt64("reload_interval_ms", 1000));
  ropts.use_mmap = use_mmap;
  ropts.want_int8 = quant == "int8";
  if (auto st = serve::ValidateServingEngine(engine, ropts.canary_queries,
                                             ropts.canary_k);
      !st.ok()) {
    std::cerr << "initial snapshot failed validation: " << st.ToString()
              << "\n";
    return 1;
  }

  serve::ModelRegistry registry;
  registry.PublishBorrowed(&engine, "startup");
  serve::ServeServer server(&registry, opts);
  if (auto st = server.Start(); !st.ok()) {
    std::cerr << "server start failed: " << st.ToString() << "\n";
    return 1;
  }
  serve::ModelReloader reloader(&registry, ropts);
  if (!ropts.watch_dir.empty()) {
    if (auto st = reloader.Start(); !st.ok()) {
      std::cerr << "reloader start failed: " << st.ToString() << "\n";
      server.Shutdown();
      return 1;
    }
  }
  std::cout << "serving " << engine.num_items() << " items (dim "
            << engine.dim() << ", quant " << quant << ") on " << opts.host
            << ":" << server.port() << "\n";
  std::cout.flush();
  // Written only now: listener accepting, initial snapshot validated.
  if (flags.Has("port_file")) {
    const std::string pf = flags.GetString("port_file", "");
    if (FILE* f = std::fopen(pf.c_str(), "w")) {
      std::fprintf(f, "%u\n", static_cast<unsigned>(server.port()));
      std::fclose(f);
    } else {
      std::cerr << "cannot write --port_file " << pf << "\n";
      reloader.Stop();
      server.Shutdown();
      return 1;
    }
  }

  int signo = 0;
  sigwait(&sigs, &signo);
  std::cout << "caught signal " << signo << ", draining...\n";
  reloader.Stop();
  server.Shutdown();
  // Same export path the offline tools use: drain -> WriteMetricsFile.
  return metrics.Finish();
}
