// sisg_train — trains a SISG model on a session file written by
// sisg_datagen and saves it (binary model + optional word2vec text export).
//
//   sisg_train --input /tmp/sessions.txt --model /tmp/model
//              --variant sisg-f-u-d --dim 64 --epochs 20 [world flags]

#include <iostream>

#include "common/flags.h"
#include "core/pipeline.h"
#include "dist/fault_plan.h"
#include "tools/tool_common.h"

using namespace sisg;

namespace {

StatusOr<SisgVariant> VariantFromName(const std::string& name) {
  if (name == "sgns") return SisgVariant::kSgns;
  if (name == "sisg-f") return SisgVariant::kSisgF;
  if (name == "sisg-u") return SisgVariant::kSisgU;
  if (name == "sisg-f-u") return SisgVariant::kSisgFU;
  if (name == "sisg-f-u-d") return SisgVariant::kSisgFUD;
  return Status::InvalidArgument("unknown variant: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  const auto known = tools::WithWorldFlags(
      {"input", "model", "variant", "dim", "epochs", "negatives", "window",
       "min_count", "threads", "ingest_threads", "max_errors", "corpus_cache",
       "distributed", "workers", "export_text", "checkpoint_dir",
       "checkpoint_interval", "resume", "fault_plan", "metrics_out",
       "metrics_interval", "help"});
  if (auto st = flags.Parse(argc, argv, known); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 2;
  }
  if (flags.GetBool("help", false) || !flags.Has("input")) {
    std::cout << "usage: sisg_train --input SESSIONS --model PREFIX\n"
                 "  [--variant sgns|sisg-f|sisg-u|sisg-f-u|sisg-f-u-d]\n"
                 "  [--dim 64] [--epochs 20] [--negatives 10] [--window 4]\n"
                 "  [--min_count 1] [--threads 1]\n"
                 "  [--ingest_threads 1] (0 = all cores; corpus build only)\n"
                 "  [--max_errors 0] (bad input lines tolerated + skipped)\n"
                 "  [--corpus_cache PREFIX] (reuse the built corpus on disk)\n"
                 "  [--distributed] [--workers 8] [--export_text FILE]\n"
                 "  [--checkpoint_dir DIR] [--checkpoint_interval N]\n"
                 "  [--resume] [--fault_plan SPEC]\n"
                 "  [--metrics_out FILE] (JSON metrics artifact)\n"
                 "  [--metrics_interval SECONDS] (periodic progress lines)\n"
                 "  [world flags matching sisg_datagen]\n"
                 "fault plan SPEC: comma-separated key=value —\n"
                 "  kill_worker, kill_at_pair, drop, dup, sync_delay_every,\n"
                 "  sync_delay_s, crash_at_pair, seed\n";
    return flags.Has("input") ? 0 : 2;
  }

  // Rebuild the world and parse the sessions.
  const DatasetSpec spec = tools::SpecFromFlags(flags);
  ItemCatalog catalog;
  if (auto st = catalog.Build(spec.catalog); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  UserUniverse users;
  if (auto st = users.Build(spec.users, catalog.num_tops()); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  auto variant = VariantFromName(flags.GetString("variant", "sisg-f-u-d"));
  if (!variant.ok()) {
    std::cerr << variant.status().ToString() << "\n";
    return 2;
  }
  SisgConfig config;
  config.variant = *variant;
  config.sgns.dim = static_cast<uint32_t>(flags.GetInt64("dim", 64));
  config.sgns.epochs = static_cast<uint32_t>(flags.GetInt64("epochs", 20));
  config.sgns.negatives =
      static_cast<uint32_t>(flags.GetInt64("negatives", 10));
  config.sgns.window.window =
      static_cast<uint32_t>(flags.GetInt64("window", 4));
  config.sgns.num_threads =
      static_cast<uint32_t>(flags.GetInt64("threads", 1));
  config.min_count = static_cast<uint32_t>(flags.GetInt64("min_count", 1));
  config.ingest_threads =
      static_cast<uint32_t>(flags.GetInt64("ingest_threads", 1));
  config.corpus_cache = flags.GetString("corpus_cache", "");
  config.distributed = flags.GetBool("distributed", false);
  config.dist.num_workers =
      static_cast<uint32_t>(flags.GetInt64("workers", 8));
  config.checkpoint_dir = flags.GetString("checkpoint_dir", "");
  config.checkpoint_interval =
      static_cast<uint64_t>(flags.GetInt64("checkpoint_interval", 0));
  config.resume = flags.GetBool("resume", false);
  if (flags.Has("fault_plan")) {
    auto plan = FaultPlan::Parse(flags.GetString("fault_plan", ""));
    if (!plan.ok()) {
      std::cerr << plan.status().ToString() << "\n";
      return 2;
    }
    config.dist.fault = *plan;
    if (plan->Active() && !config.distributed) {
      std::cerr << "fault plan: --fault_plan injects faults into the "
                   "distributed engine; pass --distributed\n";
      return 2;
    }
  }

  tools::ToolMetrics metrics = tools::ToolMetrics::FromFlags(flags);

  // Sessions stream chunk-wise from the input file straight into the
  // parallel corpus builder — the session list is never fully materialized
  // (except under --distributed, where graph partitioning needs it).
  SessionStreamOptions sopts;
  sopts.max_errors = static_cast<uint64_t>(flags.GetInt64("max_errors", 0));
  sopts.max_item_id = catalog.num_items();
  auto stream =
      SessionStream::Open(users, flags.GetString("input", ""), sopts);
  if (!stream.ok()) {
    std::cerr << stream.status().ToString() << "\n";
    return 1;
  }

  SisgPipeline pipeline(config);
  PipelineReport report;
  auto model = pipeline.TrainStream(&*stream, catalog, users, &report);
  if (!model.ok()) {
    std::cerr << "training failed: " << model.status().ToString() << "\n";
    return 1;
  }
  std::cout << "read " << report.ingest.sessions << " sessions";
  if (report.ingest.lines_skipped > 0) {
    std::cout << " (skipped " << report.ingest.lines_skipped
              << " bad lines; first: " << report.ingest.first_error << ")";
  }
  if (report.corpus_cache_hit) std::cout << " [corpus cache hit]";
  std::cout << "\n";
  std::cout << "corpus: " << report.corpus_sequences << " sequences, "
            << report.corpus_tokens << " tokens, "
            << report.corpus_build_seconds << "s build\n";
  std::cout << "trained " << report.vocab_size << " vectors, "
            << report.train.pairs_trained << " pairs, "
            << report.train.seconds << "s\n";
  if (config.distributed) {
    std::cout << "remote pair fraction " << report.comm.RemoteFraction()
              << ", load imbalance " << report.comm.LoadImbalance() << "\n";
  }

  const std::string prefix = flags.GetString("model", "sisg_model");
  if (auto st = model->Save(prefix); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  std::cout << "saved " << prefix << ".{vocab,emb}\n";
  if (flags.Has("export_text")) {
    const std::string path = flags.GetString("export_text", "vectors.txt");
    if (auto st = model->ExportText(path); !st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
    std::cout << "exported word2vec text to " << path << "\n";
  }
  return metrics.Finish();
}
