#!/bin/sh
# Runs the fault-injection ("chaos") test suite under ThreadSanitizer: the
# checkpoint/resume rendezvous barrier, the fault-injected distributed
# engine (worker kill + recovery, dropped/duplicated remote calls, injected
# crashes), the ANN degradation paths, and the serving-path hot-swap /
# attack-sweep suite (serve_reload_test). A dedicated TSan build dir keeps
# the instrumented objects out of the regular build.
#
# After the ctest suite, a LIVE sweep runs against a real TSan-instrumented
# sisg_serve process: sisg_chaos drives every attack mode plus a reload
# storm (good versions interleaved with deliberately corrupt ones) through
# the watch-dir, and sisg_loadgen keeps honest load + malformed frames on
# the wire at the same time. The server must answer every honest probe,
# swap every good version, roll back every corrupt one, and drain cleanly.
set -e
cd /root/repo
cmake -B build-tsan -S . -DSISG_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan -j
cd build-tsan
# The chaos label now includes the property suites (tests/prop). Their
# seeds propagate through the environment so a CI failure is one-command
# reproducible locally: SISG_PROP_SEED replays a single failing case,
# SISG_PROP_BASE_SEED rotates the whole run. Under TSan the per-suite case
# counts are capped (overridable) — instrumented runs are ~20x slower and
# the Release CI job already runs the full counts.
SISG_PROP_CASES="${SISG_PROP_CASES:-40}"
export SISG_PROP_CASES
if [ -n "${SISG_PROP_SEED:-}" ]; then
  echo "chaos: replaying property case SISG_PROP_SEED=$SISG_PROP_SEED"
  export SISG_PROP_SEED
fi
if [ -n "${SISG_PROP_BASE_SEED:-}" ]; then
  echo "chaos: property base seed SISG_PROP_BASE_SEED=$SISG_PROP_BASE_SEED"
  export SISG_PROP_BASE_SEED
fi
# tsan.supp masks only the documented Hogwild! weight-update race; the
# checkpoint barrier and fault-injection machinery run unsuppressed.
# On failure, surface the seeds needed to reproduce: every falsified
# property prints its own "replay: SISG_PROP_SEED=..." line in the ctest
# output above.
if ! TSAN_OPTIONS="suppressions=/root/repo/tsan.supp history_size=7" \
    ctest -L chaos --output-on-failure "$@"; then
  echo "chaos: FAILED (SISG_PROP_CASES=$SISG_PROP_CASES" \
    "SISG_PROP_BASE_SEED=${SISG_PROP_BASE_SEED:-default})" >&2
  echo "chaos: a falsified property prints 'replay: SISG_PROP_SEED=<seed>'" \
    "above; rerun with that env var to reproduce the exact case." >&2
  exit 1
fi

# --- Live serving-path sweep (reload storm + malformed frames). ---
CHAOS_DIR=$(mktemp -d)
PORT_FILE="$CHAOS_DIR/port"
METRICS_OUT="${SISG_CHAOS_METRICS_OUT:-$CHAOS_DIR/serve_chaos_metrics.json}"
WATCH_DIR="$CHAOS_DIR/watch"
mkdir -p "$WATCH_DIR"
TSAN_OPTIONS="suppressions=/root/repo/tsan.supp history_size=7" \
  ./tools/sisg_serve --synth_items 2000 --synth_dim 32 --port 0 \
    --port_file "$PORT_FILE" --watch_dir "$WATCH_DIR" \
    --reload_interval_ms 100 --idle_timeout_ms 300 --deadline_ms 500 \
    --io_threads 1 --metrics_out "$METRICS_OUT" &
SERVER_PID=$!
for i in $(seq 1 100); do [ -s "$PORT_FILE" ] && break; sleep 0.2; done
test -s "$PORT_FILE"
PORT=$(cat "$PORT_FILE")
# Reload storm + full attack sweep; corrupt every 3rd publish so validated
# rollback is exercised, not just the happy path.
./tools/sisg_chaos --port "$PORT" --modes all --connections 2 \
  --duration "${SISG_CHAOS_SECONDS:-8}" --reload_dir "$WATCH_DIR" \
  --reload_interval_ms 400 --corrupt_every 3 --items 2000 --dim 32
# Honest load with interleaved malformed frames, timeouts on.
./tools/sisg_loadgen --port "$PORT" --mode closed --connections 4 \
  --duration "${SISG_CHAOS_SECONDS:-8}" --items 2000 --k 10 \
  --timeout_ms 5000 --chaos disconnect,garbage,truncate,churn \
  --chaos_connections 2
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
test -s "$METRICS_OUT"
echo "serve chaos metrics: $METRICS_OUT"
echo "CHAOS_COMPLETE"
