#!/bin/sh
# Runs the fault-injection ("chaos") test suite under ThreadSanitizer: the
# checkpoint/resume rendezvous barrier, the fault-injected distributed
# engine (worker kill + recovery, dropped/duplicated remote calls, injected
# crashes) and the ANN degradation paths. A dedicated TSan build dir keeps
# the instrumented objects out of the regular build.
set -e
cd /root/repo
cmake -B build-tsan -S . -DSISG_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan -j
cd build-tsan
# tsan.supp masks only the documented Hogwild! weight-update race; the
# checkpoint barrier and fault-injection machinery run unsuppressed.
TSAN_OPTIONS="suppressions=/root/repo/tsan.supp history_size=7" \
  ctest -L chaos --output-on-failure "$@"
echo "CHAOS_COMPLETE"
